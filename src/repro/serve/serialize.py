"""Artifact store: persist a converted spiking network as an ``.npz`` + JSON bundle.

A serving artifact is a directory containing

* ``manifest.json`` — the network's structure: one entry per spiking layer
  (its ``kind`` plus all JSON-compatible configuration from
  :meth:`~repro.snn.layers.SpikingLayer.state_dict`), the input-encoder
  configuration, free-form metadata recorded by the exporter (norm-factor
  strategy, per-site λ values, …), and the ``flat`` offset table describing
  ``arrays.flat``;
* ``arrays.npz`` — every array-valued entry of every layer's state dict,
  keyed ``layer{index}/{field}`` (the compressed *interchange* form);
* ``arrays.flat`` — the same arrays as one contiguous block, each array
  C-contiguous and aligned to :data:`FLAT_ALIGN` bytes at the offset the
  manifest's ``flat.arrays`` table records (the *serving* form).

The split keeps the structural description human-inspectable (``repro-serve
inspect``) while the bulk weights stay in binary form.  Loading rebuilds each
layer through :func:`~repro.snn.layers.layer_from_state`, so round-tripped
networks simulate bit-identically to the in-memory original.

The flat block exists for the serving tier: it can be memory-mapped
(``load_artifact`` does, by default, when the block is present) so a cold
load never double-buffers the payload through a decompression copy, and it
can be copied *once* into :mod:`multiprocessing.shared_memory` and opened
zero-copy by every worker of a process-pool server
(:mod:`repro.serve.shm`).  The npz stays the durable interchange format —
bundles written before the flat block existed load exactly as before.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.passes import DEFAULT_LOW_LATENCY_TIMESTEPS, LATENCY_MODES
from ..runtime import active_policy, using_policy, validate_policy_spec
from ..snn.encoding import InputEncoder, PoissonCoding, RealCoding
from ..snn.layers import layer_from_state
from ..snn.network import SpikingNetwork

__all__ = [
    "FORMAT_VERSION",
    "FLAT_ALIGN",
    "ArtifactError",
    "LoadedArtifact",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "flat_layout",
    "flat_block_bytes",
    "arrays_from_buffer",
    "network_from_manifest",
]

FORMAT_VERSION = 1
MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.npz"
FLAT_FILE = "arrays.flat"
#: Byte alignment of every array inside the flat block.  64 covers the
#: widest vector registers numpy kernels care about and keeps rows
#: cache-line aligned however the block is mapped (file mmap or shm).
FLAT_ALIGN = 64


class ArtifactError(RuntimeError):
    """Raised when an artifact bundle is missing, malformed, or incompatible."""


@dataclass
class LoadedArtifact:
    """A spiking network rebuilt from disk, plus the bundle's bookkeeping."""

    network: SpikingNetwork
    metadata: Dict = field(default_factory=dict)
    manifest: Dict = field(default_factory=dict)
    path: Optional[Path] = None

    # Conversion provenance recorded by ConversionResult.export_metadata().
    # Bundles written before reset_mode / readout were exported return None,
    # so callers can distinguish "unknown" from a recorded default.

    @property
    def strategy_name(self) -> Optional[str]:
        """Norm-factor strategy the exporter used (None for foreign bundles)."""

        value = self.metadata.get("strategy_name")
        return None if value is None else str(value)

    @property
    def reset_mode(self) -> Optional[str]:
        """IF reset rule of the converted network ("subtract" / "zero")."""

        value = self.metadata.get("reset_mode")
        return None if value is None else str(value)

    @property
    def readout(self) -> Optional[str]:
        """Output readout of the converted network ("spike_count" / "membrane")."""

        value = self.metadata.get("readout")
        return None if value is None else str(value)

    @property
    def backend(self) -> Optional[str]:
        """Simulation backend recorded by the exporter ("dense"/"event"/"auto").

        ``load_artifact`` already applied it to the rebuilt network; bundles
        written before backends existed return None and run dense.  Only the
        spec *name* round-trips: a custom ``Backend`` instance (or a
        non-default crossover) must be re-applied with ``set_backend`` after
        loading — unknown recorded names load fine and run dense.
        """

        value = self.metadata.get("backend")
        return None if value is None else str(value)

    @property
    def precision(self) -> Optional[str]:
        """Compute-policy profile recorded by the exporter
        ("train64"/"infer32"/"infer8").

        ``load_artifact`` already applied it to the rebuilt network; bundles
        written before compute policies existed return None and run under
        the active policy.  Only the profile *name* round-trips: a custom
        ``ComputePolicy`` instance must be re-applied with ``set_policy``
        after loading — unknown recorded names degrade to ``train64`` with a
        warning, which casts the bundle's arrays to float64 exactly as
        ``set_policy("train64")`` would (re-apply the custom policy to get
        its dtype back; the on-disk bundle is untouched).  ``infer8``
        bundles store int8 weights and per-layer scales in their layer
        states (the npz payload preserves integer dtypes), so the degraded
        ``train64`` fallback *dequantizes* — lossy, like any float cast of
        a quantized grid.
        """

        value = self.metadata.get("precision")
        return None if value is None else str(value)

    @property
    def scheduler(self) -> Optional[str]:
        """Execution scheduler recorded by the exporter ("sequential"/"pipelined"/"sharded").

        ``load_artifact`` already applied it to the rebuilt network; bundles
        written before schedulers existed return None and run sequentially.
        Only the spec *name* round-trips: a custom ``Scheduler`` instance
        (or a non-default shard count / queue depth) must be re-applied with
        ``set_scheduler`` after loading — unknown recorded names degrade to
        the sequential scheduler with a warning.  For real-coded bundles
        the degradation changes wall-clock only; a Poisson-coded bundle
        additionally stops redrawing per shard (see
        :class:`~repro.snn.ShardedScheduler`).
        """

        value = self.metadata.get("scheduler")
        return None if value is None else str(value)

    @property
    def latency(self) -> Optional[str]:
        """Conversion latency mode recorded by the exporter ("standard"/"low").

        The mode itself needs no re-application — its effects (shifted
        thresholds, λ/2 membrane-initialization fractions, compensated
        biases) are baked into the layer states ``load_artifact`` rebuilds,
        so a low-latency bundle simulates bit-identically to the exported
        network.  The recorded mode is advisory: serving reads it (with
        :attr:`recommended_timesteps`) to size simulation budgets.  Bundles
        written before latency modes existed return None and are treated as
        standard; unknown recorded modes degrade to standard with a warning
        at load time.
        """

        value = self.metadata.get("latency_mode")
        if value is None:
            return None
        value = str(value)
        return value if value in LATENCY_MODES else "standard"

    @property
    def recommended_timesteps(self) -> Optional[int]:
        """Simulation budget T the conversion was calibrated for (or None).

        Low-latency bundles record the T their shift/init/compensation
        passes targeted; simulating longer buys no accuracy and costs
        linearly, so serving uses this to cap ``AdaptiveConfig`` budgets
        (:meth:`repro.serve.AdaptiveConfig.for_artifact`).
        """

        value = self.metadata.get("timesteps")
        if value is None:
            return DEFAULT_LOW_LATENCY_TIMESTEPS if self.latency == "low" else None
        return int(value)


def _jsonable(value):
    """Coerce exporter metadata into JSON-compatible values."""

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _encoder_to_state(encoder: InputEncoder) -> Dict[str, object]:
    if isinstance(encoder, PoissonCoding):
        return {"kind": "poisson", "gain": encoder.gain, "seed": encoder.seed}
    if isinstance(encoder, RealCoding):
        return {"kind": "real"}
    raise ArtifactError(
        f"cannot serialize input encoder of type {type(encoder).__name__}; "
        "serving artifacts support RealCoding and PoissonCoding"
    )


def _encoder_from_state(state: Dict[str, object]) -> InputEncoder:
    kind = state.get("kind", "real")
    if kind == "real":
        return RealCoding()
    if kind == "poisson":
        # seed may be JSON null: PoissonCoding(seed=None) is a valid,
        # intentionally unseeded encoder and must round-trip as such.
        seed = state.get("seed", 0)
        return PoissonCoding(gain=float(state.get("gain", 1.0)), seed=None if seed is None else int(seed))
    raise ArtifactError(f"unknown encoder kind {kind!r} in artifact manifest")


# ---------------------------------------------------------------------------
# Flat-buffer layout: one contiguous aligned block + offset table
# ---------------------------------------------------------------------------


def flat_layout(arrays: Dict[str, np.ndarray]) -> Dict[str, object]:
    """The manifest ``flat`` section for a key→array mapping.

    Arrays are laid out in sorted-key order, each C-contiguous at an offset
    rounded up to :data:`FLAT_ALIGN`; the table records offset, shape and
    dtype (numpy ``dtype.str``, so byte order is explicit) per key, plus the
    total block size.  Pure layout — no bytes are produced here — so the
    same table describes the on-disk ``arrays.flat`` file and any
    shared-memory copy of it.
    """

    table: Dict[str, Dict[str, object]] = {}
    offset = 0
    for key in sorted(arrays):
        array = arrays[key]
        offset = -(-offset // FLAT_ALIGN) * FLAT_ALIGN
        table[key] = {
            "offset": offset,
            "shape": [int(dim) for dim in array.shape],
            "dtype": array.dtype.str,
        }
        offset += array.nbytes
    return {"file": FLAT_FILE, "align": FLAT_ALIGN, "size": offset, "arrays": table}


def flat_block_bytes(arrays: Dict[str, np.ndarray], layout: Dict[str, object]) -> bytearray:
    """Materialise the contiguous block ``layout`` describes (padding zeroed)."""

    block = bytearray(int(layout["size"]))
    for key, entry in layout["arrays"].items():
        data = np.ascontiguousarray(arrays[key])
        start = int(entry["offset"])
        block[start:start + data.nbytes] = data.tobytes()
    return block


def arrays_from_buffer(buffer, layout: Dict[str, object], writable: bool = False) -> Dict[str, np.ndarray]:
    """Zero-copy array views over a buffer holding a flat block.

    ``buffer`` is anything exposing the buffer protocol over at least
    ``layout["size"]`` bytes — a ``memmap`` of ``arrays.flat``, a
    ``SharedMemory.buf`` memoryview, raw ``bytes``.  Views are marked
    read-only unless ``writable`` (weights are read-only during simulation;
    an accidental in-place write through a shared mapping would corrupt
    every attached process).
    """

    views: Dict[str, np.ndarray] = {}
    for key, entry in layout["arrays"].items():
        dtype = np.dtype(str(entry["dtype"]))
        shape = tuple(int(dim) for dim in entry["shape"])
        view = np.frombuffer(buffer, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)), offset=int(entry["offset"]))
        view = view.reshape(shape)
        view.flags.writeable = bool(writable) and view.flags.writeable
        views[key] = view
    return views


def _read_flat_views(path: Path, manifest: Dict) -> Optional[Dict[str, np.ndarray]]:
    """Memory-mapped views over the bundle's flat block, or ``None``.

    ``None`` (bundle predates the flat block, or the file is missing /
    truncated) sends the caller down the npz fallback path.
    """

    flat = manifest.get("flat")
    if not isinstance(flat, dict) or "arrays" not in flat:
        return None
    flat_path = path / str(flat.get("file", FLAT_FILE))
    if not flat_path.is_file() or flat_path.stat().st_size < int(flat.get("size", 0)):
        return None
    if int(flat.get("size", 0)) == 0:
        return {}
    # mode="r": pages fault in lazily from the file and stay clean/shared,
    # so a cold load of a large bundle touches only what simulation reads
    # and never holds a second decompressed copy of the payload.
    raw = np.memmap(flat_path, dtype=np.uint8, mode="r")
    return arrays_from_buffer(raw, flat)


def save_artifact(
    network: SpikingNetwork,
    path: Union[str, Path],
    metadata: Optional[Dict] = None,
) -> Path:
    """Write ``network`` (and optional exporter metadata) as a bundle at ``path``.

    The network's compute-policy profile and execution scheduler are
    recorded under the ``precision`` / ``scheduler`` metadata keys unless
    the caller already supplied them (as ``ConversionResult.export_metadata``
    does), so a directly-saved ``infer32`` network reloads under ``infer32``
    and a pipelined network reloads pipelined.

    ``path`` is created as a directory (parents included); an existing bundle
    at the same location is replaced.  The bundle is written into a staging
    directory first and swapped in via renames at the end, so a concurrent
    reader never observes a manifest from one save paired with arrays from
    another (though it may briefly find no bundle at all in the instant
    between the two renames of a replacement — the registry's generation
    tracking keeps such a reader from caching anything stale).  Returns the
    bundle path.
    """

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Unique per call (not just per process): concurrent saves of the same
    # bundle must never share or delete each other's scratch directories.
    token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
    staging = path.parent / f".{path.name}.staging-{token}"
    staging.mkdir()

    arrays: Dict[str, np.ndarray] = {}
    layer_entries: List[Dict[str, object]] = []
    for index, layer in enumerate(network.layers):
        entry: Dict[str, object] = {}
        for key, value in layer.state_dict().items():
            if isinstance(value, np.ndarray):
                arrays[f"layer{index}/{key}"] = value
            else:
                entry[key] = _jsonable(value)
        layer_entries.append(entry)

    recorded = dict(metadata or {})
    recorded.setdefault("precision", network.policy_spec)
    recorded.setdefault("scheduler", network.scheduler_spec)
    flat = flat_layout(arrays)
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "encoder": _encoder_to_state(network.encoder),
        "layers": layer_entries,
        "flat": flat,
        "metadata": _jsonable(recorded),
    }
    retired_dirs: List[Path] = []
    try:
        with open(staging / MANIFEST_FILE, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
        np.savez_compressed(staging / ARRAYS_FILE, **arrays)
        with open(staging / FLAT_FILE, "wb") as handle:
            handle.write(flat_block_bytes(arrays, flat))
        # Rename the old bundle aside (cheap) rather than rmtree-ing it in
        # place (slow), so the no-bundle window a concurrent reader can hit
        # is two renames wide instead of a whole recursive delete.  A
        # concurrent writer can re-create ``path`` between the two renames
        # (os.replace cannot overwrite a non-empty directory), so the swap
        # retries a bounded number of times, moving the interloper aside too
        # — last writer wins with a complete bundle either way.
        swap_error: Optional[OSError] = None
        for attempt in range(5):
            try:
                if path.exists():
                    retired = path.parent / f".{path.name}.retired-{token}-{attempt}"
                    os.replace(path, retired)
                    retired_dirs.append(retired)
                os.replace(staging, path)
                break
            except OSError as error:
                # Lost a race with another writer (it took ``path`` between
                # our exists() check and a rename, or re-created it); retry.
                swap_error = error
        else:
            raise swap_error if swap_error is not None else ArtifactError(f"could not install bundle at {path}")
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        # The save failed after a previous bundle was moved aside: put the
        # most recent one back so the model does not vanish.  If even the
        # restore fails, that copy is deliberately left on disk as the
        # surviving data.
        if retired_dirs and not path.exists():
            try:
                os.replace(retired_dirs[-1], path)
            except OSError:
                pass
            retired_dirs.pop()
        for leftover in retired_dirs:
            shutil.rmtree(leftover, ignore_errors=True)
        raise
    for leftover in retired_dirs:
        shutil.rmtree(leftover, ignore_errors=True)
    return path


def read_manifest(path: Union[str, Path]) -> Dict:
    """Read and validate the manifest of a bundle without loading the weights."""

    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise ArtifactError(f"no serving artifact at {path}: missing {MANIFEST_FILE}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact at {path} has format_version={version!r}; this build reads version {FORMAT_VERSION}"
        )
    return manifest


def network_from_manifest(
    manifest: Dict,
    arrays: Dict[str, np.ndarray],
    origin: str = "bundle",
) -> SpikingNetwork:
    """Rebuild a :class:`~repro.snn.SpikingNetwork` from a manifest + arrays.

    ``arrays`` maps the manifest's ``layer{index}/{field}`` keys to the
    weight arrays — eagerly decompressed from the npz, memory-mapped views
    of the flat block, or zero-copy views over a shared-memory segment
    (:mod:`repro.serve.shm`); the rebuild never copies a float array whose
    dtype already matches the bundle's recorded profile, so the backing
    buffer is genuinely shared.  Applies the recorded compute-policy
    profile, scheduler and backend exactly as :func:`load_artifact` always
    has (unknown names degrade with a warning naming ``origin``).
    """

    by_layer: Dict[int, Dict[str, np.ndarray]] = {}
    for key, value in arrays.items():
        layer_tag, _, field_name = key.partition("/")
        if layer_tag.startswith("layer") and field_name:
            try:
                index = int(layer_tag[len("layer"):])
            except ValueError:
                continue
            by_layer.setdefault(index, {})[field_name] = value

    metadata = manifest.get("metadata", {})
    precision = metadata.get("precision")
    target: Optional[str] = None
    if precision is not None:
        # The exporter's compute-policy profile travels with the bundle so a
        # served copy runs (and allocates) the way it was benchmarked.  The
        # stored arrays already carry the right dtypes; re-applying the
        # profile aligns the pools, encoder and kernel mode with them.
        try:
            validate_policy_spec(str(precision))
            target = str(precision)
        except ValueError:
            warnings.warn(
                f"{origin} records unknown compute-policy profile {precision!r}; "
                "running under 'train64' (custom ComputePolicy instances do not round-trip "
                "through bundles — re-apply with set_policy)",
                UserWarning,
                stacklevel=2,
            )
            target = "train64"
    # Construction happens under the bundle's own profile: building under a
    # *different* quantized active policy would transiently snap the float
    # payloads onto int8 grids, and the quantize → dequantize round trip is
    # lossy (weights come back as q·scale, not the saved bits).
    with using_policy(target if target is not None else active_policy()):
        layers = []
        for index, entry in enumerate(manifest["layers"]):
            state = dict(entry)
            state.update(by_layer.get(index, {}))
            layers.append(layer_from_state(state))
        network = SpikingNetwork(
            layers,
            encoder=_encoder_from_state(manifest.get("encoder", {})),
            name=manifest.get("name", "snn"),
        )
    if target is not None:
        network.set_policy(target)
    scheduler = metadata.get("scheduler")
    if scheduler is not None:
        # The exporter's execution-scheduler choice travels with the bundle
        # so a served copy parallelises the way it was benchmarked.  Like
        # the backend it is an execution hint, never semantics: unknown
        # recorded names (custom Scheduler instances, future schedulers)
        # degrade to the sequential loop, changing wall-clock only.
        try:
            network.set_scheduler(str(scheduler))
        except ValueError:
            warnings.warn(
                f"{origin} records unknown execution scheduler {scheduler!r}; "
                "running sequentially (custom Scheduler instances do not round-trip "
                "through bundles — re-apply with set_scheduler)",
                UserWarning,
                stacklevel=2,
            )
    latency = metadata.get("latency_mode")
    if latency is not None and str(latency) not in LATENCY_MODES:
        # Latency modes are baked into the layer states (thresholds, v_init,
        # biases), so there is nothing to un-apply; the warning tells the
        # operator the advisory mode is from a newer writer and serving will
        # size its timestep budgets as for a standard conversion.
        warnings.warn(
            f"{origin} records unknown latency mode {latency!r}; "
            "treating it as 'standard' (the converted weights load unchanged)",
            UserWarning,
            stacklevel=2,
        )
    backend = metadata.get("backend")
    if backend is not None:
        # The exporter's simulation-backend choice travels with the bundle so
        # a served copy runs the way it was benchmarked.  The backend is an
        # execution hint, never semantics: a bundle converted with a custom
        # Backend instance records that instance's name, which this process
        # may not know — such bundles still load and run dense.
        try:
            network.set_backend(str(backend))
        except ValueError:
            warnings.warn(
                f"{origin} records unknown simulation backend {backend!r}; running dense "
                "(custom Backend instances do not round-trip through bundles — re-apply with set_backend)",
                UserWarning,
                stacklevel=2,
            )
    return network


def load_artifact(path: Union[str, Path], mmap: Optional[bool] = None) -> LoadedArtifact:
    """Rebuild a :class:`~repro.snn.SpikingNetwork` from a bundle directory.

    ``mmap`` controls how the weight payload is opened:

    * ``None`` (default) — memory-map the flat block when the bundle has
      one, otherwise decompress the npz eagerly (pre-flat bundles);
    * ``True`` — require the flat block (:class:`ArtifactError` without it);
    * ``False`` — always decompress the npz (a private, file-independent
      copy — e.g. before deleting the bundle from disk).

    A memory-mapped load keeps weights as read-only views over the page
    cache: cold loads stop double-buffering the payload in RAM, pages fault
    in lazily as simulation first touches them, and every process mapping
    the same bundle shares one physical copy.
    """

    path = Path(path)
    manifest = read_manifest(path)
    arrays: Optional[Dict[str, np.ndarray]] = None
    if mmap is None or mmap:
        arrays = _read_flat_views(path, manifest)
        if arrays is None and mmap:
            raise ArtifactError(
                f"artifact at {path} has no flat block to memory-map; "
                "re-save it with this build (or load with mmap=False)"
            )
    if arrays is None:
        arrays_path = path / ARRAYS_FILE
        if not arrays_path.is_file():
            raise ArtifactError(f"no serving artifact at {path}: missing {ARRAYS_FILE}")
        with np.load(arrays_path) as stored:
            arrays = {key: stored[key] for key in stored.files}

    network = network_from_manifest(manifest, arrays, origin=f"artifact at {path}")
    return LoadedArtifact(
        network=network,
        metadata=manifest.get("metadata", {}),
        manifest=manifest,
        path=path,
    )
