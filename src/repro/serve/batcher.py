"""Dynamic micro-batching queue for single-sample inference requests.

Time-stepped SNN simulation amortises extremely well over the batch axis (one
im2col + matmul per layer per timestep regardless of batch size), so serving
single-sample requests individually wastes nearly all of the hardware.  The
micro-batcher coalesces queued requests into one engine call, bounded by a
maximum batch size and a maximum extra wait: the first request of a batch
waits at most ``max_wait_ms`` for company before the batch is released.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..obs import active_tracer

__all__ = ["InferenceRequest", "MicroBatcher"]


@dataclass
class InferenceRequest:
    """One queued sample waiting to be coalesced into an engine call."""

    image: np.ndarray
    model: str
    version: Optional[str] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)

    @property
    def queue_ms(self) -> float:
        return (time.perf_counter() - self.enqueued_at) * 1000.0


class MicroBatcher:
    """FIFO queue that releases requests in bounded, time-limited batches."""

    def __init__(self, max_batch_size: int = 32, max_wait_ms: float = 5.0) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be non-negative, got {max_wait_ms}")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._queue: "queue.Queue[InferenceRequest]" = queue.Queue()

    def submit(self, request: InferenceRequest) -> Future:
        """Enqueue a request; its future resolves when a worker serves it."""

        self._queue.put(request)
        return request.future

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    def drain(self) -> List[InferenceRequest]:
        """Remove and return every currently queued request.

        The server calls this after its workers have exited: a request that
        slipped into the queue during the shutdown drain would otherwise
        keep an unresolved future forever.  The caller owns resolving the
        returned requests' futures (the server fails them with an explicit
        shutdown error).
        """

        drained: List[InferenceRequest] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                return drained

    def next_batch(self, timeout: Optional[float] = None) -> List[InferenceRequest]:
        """Block for the next batch of requests.

        Waits up to ``timeout`` seconds for the first request (raising
        :class:`queue.Empty` on expiry, like ``Queue.get``), then coalesces
        further requests until the batch is full or ``max_wait_ms`` has passed
        since the first request was taken.
        """

        first = self._queue.get(timeout=timeout)
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # One last non-blocking sweep: anything already queued rides
                # along even when the wait budget is exhausted.
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except queue.Empty:
                    break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        tracer = active_tracer()
        if tracer.enabled:
            tracer.event(
                "batch-coalesced",
                category="serve",
                size=len(batch),
                coalesce_wait_ms=(time.perf_counter() - first.enqueued_at) * 1000.0,
            )
        return batch
