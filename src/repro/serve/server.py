"""Threaded inference server: micro-batching workers over the model registry.

``InferenceServer`` ties the serving subsystem together: requests enter
through :meth:`submit` (returning a future) or the blocking :meth:`infer`;
worker threads pull coalesced micro-batches from the
:class:`~repro.serve.batcher.MicroBatcher`, group them by model, look the
model up in the :class:`~repro.serve.registry.ModelRegistry`, run the
:class:`~repro.serve.engine.AdaptiveEngine`, and resolve each request's
future with an :class:`InferenceReply`.  Telemetry lands in a shared
:class:`~repro.serve.metrics.ServingMetrics`.

A loaded network carries mutable membrane state, so concurrent engine calls
against the same artifact would corrupt each other; the server serialises
engine runs per (model, version) with a lock while different models still run
in parallel across workers.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import active_tracer
from .admission import AdmissionController, Overloaded
from .batcher import InferenceRequest, MicroBatcher
from .engine import AdaptiveConfig, AdaptiveEngine
from .metrics import RequestRecord, ServingMetrics
from .registry import ModelRegistry

__all__ = ["InferenceReply", "InferenceServer", "Overloaded"]

_POLL_SECONDS = 0.05


@dataclass
class InferenceReply:
    """What a resolved request future carries."""

    prediction: int
    scores: np.ndarray
    timesteps: int
    wall_ms: float
    model: str
    version: str


class InferenceServer:
    """Micro-batching, adaptive-latency inference over published artifacts."""

    def __init__(
        self,
        registry: ModelRegistry,
        engine_config: Optional[AdaptiveConfig] = None,
        batcher: Optional[MicroBatcher] = None,
        metrics: Optional[ServingMetrics] = None,
        num_workers: int = 1,
        max_inflight: Optional[int] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.registry = registry
        self.engine_config = engine_config if engine_config is not None else AdaptiveConfig()
        self.batcher = batcher if batcher is not None else MicroBatcher()
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.num_workers = num_workers
        self.admission = AdmissionController(
            max_inflight,
            on_shed=self.metrics.record_shed,
            on_depth=self.metrics.set_queue_depth,
        )
        self._workers: List[threading.Thread] = []
        self._stop = threading.Event()
        self._model_locks: Dict[Tuple[str, str], threading.Lock] = defaultdict(threading.Lock)
        self._locks_guard = threading.Lock()
        # Guards the closed flag against submits racing a stop(): a submit
        # either enqueues before stop() flips the flag (and is then caught
        # by the post-join drain) or fails fast on a stopped server.
        self._closed = False
        self._submit_guard = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._workers) and not self._stop.is_set()

    def start(self) -> "InferenceServer":
        if self._workers:
            raise RuntimeError("server is already running")
        self._stop.clear()
        with self._submit_guard:
            self._closed = False
        for index in range(self.num_workers):
            worker = threading.Thread(target=self._worker_loop, name=f"repro-serve-{index}", daemon=True)
            worker.start()
            self._workers.append(worker)
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the workers; with ``drain`` the queue is emptied first.

        Every future accepted by :meth:`submit` before this call returns is
        guaranteed to complete: requests the workers picked up resolve
        normally, and any request still queued when the workers exit — a
        request can slip in after the drain loop saw an empty queue but
        before the workers observed the stop signal — is failed with a
        ``RuntimeError`` instead of being dropped with its future forever
        pending.  Once the server is marked closed, further :meth:`submit`
        calls fail fast, so no request can sneak in behind the final drain.
        """

        if not self._workers:
            # Never started (or already stopped): there are no workers to
            # join, but the completion guarantee still applies — close the
            # intake and fail anything queued before start() was ever
            # called, instead of leaving those futures pending forever.
            with self._submit_guard:
                self._closed = True
            self._fail_drained()
            return
        if drain:
            while self.batcher.pending:
                self._stop.wait(_POLL_SECONDS)
        self._stop.set()
        for worker in self._workers:
            worker.join()
        self._workers = []
        # Flip the flag under the submit guard *before* the final drain: a
        # concurrent submit either already enqueued (the drain below catches
        # it) or observes the closed server and raises.
        with self._submit_guard:
            self._closed = True
        self._fail_drained()

    def _fail_drained(self) -> None:
        """Fail every request still queued — no worker will ever serve it."""

        for request in self.batcher.drain():
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    RuntimeError(
                        f"inference server stopped before request for model "
                        f"{request.model!r} was served"
                    )
                )

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request entry points --------------------------------------------------

    def submit(self, image: np.ndarray, model: str, version: Optional[str] = None) -> Future:
        """Enqueue one sample; the returned future resolves to an :class:`InferenceReply`.

        The image's dtype is preserved here — the engine casts the coalesced
        batch once to the target model's compute-policy dtype, so a float32
        request served by an ``infer32`` model is never round-tripped
        through float64.

        Raises ``RuntimeError`` once the server has been stopped: with the
        workers gone the request could never be served, and enqueueing it
        would strand its future forever.  (Submitting *before* ``start()``
        is still allowed — the queue is simply drained when the workers
        come up.)  Raises :class:`~repro.serve.admission.Overloaded` when a
        ``max_inflight`` budget is configured and exhausted — the typed
        load-shed reply; the request was never enqueued.
        """

        request = InferenceRequest(image=np.asarray(image), model=model, version=version)
        with self._submit_guard:
            if self._closed:
                raise RuntimeError("inference server has been stopped; no workers will serve this request")
            self.admission.admit()
            future = self.batcher.submit(request)
        # The admitted request counts against the budget until its future
        # completes — resolution, failure, and cancellation all release.
        future.add_done_callback(self.admission.releaser())
        return future

    def infer(self, image: np.ndarray, model: str, version: Optional[str] = None, timeout: Optional[float] = None) -> InferenceReply:
        """Blocking single-sample inference."""

        return self.submit(image, model, version).result(timeout=timeout)

    # -- worker loop -----------------------------------------------------------

    def _model_lock(self, key: Tuple[str, str]) -> threading.Lock:
        with self._locks_guard:
            return self._model_locks[key]

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                batch = self.batcher.next_batch(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue
            groups: Dict[Tuple[str, Optional[str]], List[InferenceRequest]] = defaultdict(list)
            for request in batch:
                groups[(request.model, request.version)].append(request)
            for (model, version), requests in groups.items():
                try:
                    self._serve_group(model, version, requests)
                except Exception as error:  # never let one bad batch kill the worker
                    for request in requests:
                        if not request.future.done():
                            request.future.set_exception(error)

    def _serve_group(self, model: str, version: Optional[str], requests: List[InferenceRequest]) -> None:
        # Claim every future before doing work: a client that timed out and
        # cancelled its future is dropped here, and the claim guarantees the
        # set_result/set_exception calls below cannot race a late cancel.
        requests = [request for request in requests if request.future.set_running_or_notify_cancel()]
        if not requests:
            return
        queue_ms = [request.queue_ms for request in requests]
        # The request-lifecycle span: by the time the group reaches a worker
        # the queue→batch phase is already behind it (its duration is the
        # recorded queue wait), so the span covers lookup + engine compute,
        # with the engine's own span (and the scheduler's run/layer spans)
        # nested beneath it on this worker thread.
        tracer = active_tracer()
        with tracer.span("serve:batch", category="serve") as span:
            if span.recording:
                span.annotate(
                    model=model,
                    version=version,
                    batch_size=len(requests),
                    mean_queue_ms=sum(queue_ms) / len(queue_ms),
                    max_queue_ms=max(queue_ms),
                )
            try:
                artifact = self.registry.get(model, version)
                resolved_version = artifact.path.name if artifact.path is not None else (version or "")
                images = np.stack([request.image for request in requests])
                with self._model_lock((model, resolved_version)):
                    outcome = AdaptiveEngine(artifact.network, self.engine_config).infer(images)
            except Exception as error:  # surface the failure on every waiting future
                for request in requests:
                    request.future.set_exception(error)
                return
            if span.recording:
                span.annotate(
                    mean_exit_timesteps=outcome.mean_timesteps,
                    spikes_per_inference=outcome.spikes_per_inference,
                )

        wall_ms = outcome.wall_seconds * 1000.0
        for position, request in enumerate(requests):
            reply = InferenceReply(
                prediction=int(outcome.predictions[position]),
                scores=outcome.scores[position],
                timesteps=int(outcome.exit_timesteps[position]),
                wall_ms=wall_ms,
                model=model,
                version=resolved_version,
            )
            self.metrics.record(
                RequestRecord(
                    model=model,
                    timesteps=reply.timesteps,
                    wall_ms=wall_ms + queue_ms[position],
                    queue_ms=queue_ms[position],
                    batch_size=len(requests),
                    spikes=outcome.spikes_per_inference,
                )
            )
            request.future.set_result(reply)
