"""``repro-serve`` — command-line entry point of the serving subsystem.

Subcommands
-----------
``demo``
    The zero-to-serving path on synthetic data: train a tiny TCL ConvNet,
    convert it, publish the artifact into a registry directory, start the
    micro-batching server, push the evaluation set through it one request at
    a time, and print the serving telemetry next to the fixed-T baseline.
``inspect``
    Print the manifest summary of an artifact bundle (layers, encoder,
    exporter metadata) without loading the weights.
``list``
    List the models/versions published under a registry root.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve converted TCL spiking networks with adaptive latency.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train→convert→publish→serve on synthetic data")
    demo.add_argument("--root", default="serve-artifacts", help="registry directory (default: ./serve-artifacts)")
    demo.add_argument("--model-name", default="convnet4-cifar", help="registry name for the published artifact")
    demo.add_argument("--epochs", type=int, default=4, help="ANN training epochs")
    demo.add_argument("--timesteps", type=int, default=120, help="maximum (fixed-T) latency")
    demo.add_argument("--stability-window", type=int, default=40, help="early-exit stability window")
    demo.add_argument("--min-timesteps", type=int, default=10, help="earliest allowed exit")
    demo.add_argument("--max-batch-size", type=int, default=16, help="micro-batch size cap")
    demo.add_argument("--max-wait-ms", type=float, default=10.0, help="micro-batch wait budget")
    demo.add_argument("--workers", type=int, default=1, help="server worker threads (or processes with --serving-mode process)")
    demo.add_argument(
        "--serving-mode",
        choices=("thread", "process"),
        default="thread",
        help=(
            "'thread' runs the in-process InferenceServer; 'process' runs the "
            "ProcessPoolServer — forked workers over one shared-memory copy of "
            "the artifact, escaping the GIL entirely"
        ),
    )
    demo.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="pool workers that hold the model resident (process mode; clamped to --workers)",
    )
    demo.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help=(
            "admission-control budget: requests admitted but not yet completed; "
            "beyond it submit sheds with the typed Overloaded error (default: unbounded)"
        ),
    )
    demo.add_argument(
        "--backend",
        choices=("dense", "event", "auto"),
        default="dense",
        help="simulation backend of the converted network (recorded in the artifact)",
    )
    demo.add_argument(
        "--precision",
        choices=("train64", "infer32", "infer8"),
        default="train64",
        help="compute-policy profile of the converted network (recorded in the artifact)",
    )
    demo.add_argument(
        "--scheduler",
        choices=("sequential", "pipelined", "sharded"),
        default="sequential",
        help="execution scheduler of the converted network (recorded in the artifact)",
    )
    demo.add_argument(
        "--latency",
        choices=["standard", "low"],
        default="standard",
        help=(
            "conversion latency mode: 'low' activates the ultra-low-latency "
            "passes (threshold shift, λ/2 membrane init, error compensation) "
            "and caps the serving timestep budget at the calibrated T"
        ),
    )
    demo.add_argument("--seed", type=int, default=7, help="experiment seed")
    demo.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a trace of the demo and write it to PATH — Chrome "
            "trace-event JSON (open in Perfetto / chrome://tracing), or "
            "span-per-line JSONL when PATH ends in .jsonl"
        ),
    )

    inspect = sub.add_parser("inspect", help="print the manifest of an artifact bundle")
    inspect.add_argument("path", help="artifact bundle directory")

    listing = sub.add_parser("list", help="list published models under a registry root")
    listing.add_argument("root", help="registry directory")

    return parser


def _run_demo(args: argparse.Namespace) -> int:
    # Imported lazily so `repro-serve inspect` stays fast and dependency-light.
    from ..obs import Tracer, using_tracer, write_chrome_trace, write_jsonl

    if args.trace is None:
        return _demo_body(args)
    tracer = Tracer()
    with using_tracer(tracer):
        status = _demo_body(args)
    if str(args.trace).endswith(".jsonl"):
        count = write_jsonl(tracer, args.trace)
        print(f"· trace: {count} spans → {args.trace}")
    else:
        write_chrome_trace(tracer, args.trace, process_name="repro-serve demo")
        print(f"· trace: {len(tracer)} spans → {args.trace} (open in Perfetto or chrome://tracing)")
    return status


def _demo_body(args: argparse.Namespace) -> int:
    # Imported lazily so `repro-serve inspect` stays fast and dependency-light.
    from ..core import Converter, ExperimentConfig
    from ..core.pipeline import prepare_data, train_ann
    from ..training import TrainingConfig
    from .batcher import MicroBatcher
    from .engine import AdaptiveConfig, AdaptiveEngine
    from .pool import ProcessPoolServer
    from .registry import ModelRegistry
    from .server import InferenceServer

    # Validate the serving configuration before spending time on training.
    engine_config = AdaptiveConfig(
        max_timesteps=args.timesteps,
        min_timesteps=args.min_timesteps,
        stability_window=args.stability_window,
        backend=args.backend,
        precision=args.precision,
        scheduler=args.scheduler,
    )

    config = ExperimentConfig(
        model="convnet4",
        dataset="cifar",
        model_kwargs={"channels": (8, 8, 16, 16), "hidden_features": 32},
        training=TrainingConfig(epochs=args.epochs, learning_rate=0.05, milestones=(max(args.epochs - 1, 1),)),
        timesteps=args.timesteps,
        train_per_class=16,
        test_per_class=8,
        num_classes=4,
        image_size=12,
        seed=args.seed,
    )

    print("· preparing synthetic CIFAR-like data …")
    train_images, train_labels, test_images, test_labels = prepare_data(config)
    print(f"· training TCL ANN ({args.epochs} epochs) …")
    model, ann_accuracy, _ = train_ann(config, train_images, train_labels, test_images, test_labels, clip_enabled=True)
    print(f"  ANN accuracy: {ann_accuracy:.3f}")

    print(
        f"· converting to SNN (TCL norm-factors, {args.backend} backend, "
        f"{args.precision} precision, {args.scheduler} scheduler, {args.latency} latency) …"
    )
    conversion = (
        Converter(model)
        .strategy("tcl")
        .backend(args.backend)
        .precision(args.precision)
        .scheduler(args.scheduler)
        .latency(args.latency)
        .calibrate(train_images)
        .convert()
    )

    registry = ModelRegistry(args.root)
    path = registry.publish(args.model_name, conversion.snn, metadata=conversion.export_metadata())
    print(f"· published artifact: {path}")

    artifact = registry.get(args.model_name)
    fixed_timesteps = args.timesteps
    if args.latency == "low":
        # A low-latency bundle records the T it was calibrated for; size
        # every serving budget to that instead of the generic defaults.
        engine_config = AdaptiveConfig.for_artifact(
            artifact,
            backend=args.backend,
            precision=args.precision,
            scheduler=args.scheduler,
        )
        fixed_timesteps = engine_config.max_timesteps
        print(f"· low-latency artifact: serving budget capped at T={fixed_timesteps}")

    fixed = AdaptiveEngine(
        artifact.network,
        AdaptiveConfig(
            max_timesteps=fixed_timesteps,
            # A small fixed budget (the low-latency cap, or --timesteps below
            # the default floor) must not trip the min<=max validation.
            min_timesteps=min(AdaptiveConfig.min_timesteps, fixed_timesteps),
            stability_window=min(AdaptiveConfig.stability_window, fixed_timesteps),
            adaptive=False,
        ),
    ).infer(test_images)
    print(f"· fixed-T baseline: accuracy {fixed.accuracy(test_labels):.3f} at T={fixed_timesteps}")

    if args.serving_mode == "process":
        registry.set_replicas(args.model_name, args.replicas)
        server = ProcessPoolServer(
            registry,
            engine_config=engine_config,
            batcher=MicroBatcher(max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms),
            num_workers=args.workers,
            max_inflight=args.max_inflight,
        )
        print(
            f"· process pool: {args.workers} forked workers × {args.replicas} replica(s) "
            f"over one shared-memory artifact copy"
        )
    else:
        server = InferenceServer(
            registry,
            engine_config=engine_config,
            batcher=MicroBatcher(max_batch_size=args.max_batch_size, max_wait_ms=args.max_wait_ms),
            num_workers=args.workers,
            max_inflight=args.max_inflight,
        )
    print(f"· serving {len(test_images)} single-sample requests …")
    with server:
        futures = [server.submit(image, args.model_name) for image in test_images]
        replies = [future.result(timeout=300) for future in futures]

    predictions = np.array([reply.prediction for reply in replies])
    accuracy = float((predictions == test_labels).mean())
    snapshot = server.metrics.snapshot()
    print(f"· served accuracy: {accuracy:.3f} (fixed-T {fixed.accuracy(test_labels):.3f})")
    print(snapshot.report())
    return 0


def _run_inspect(args: argparse.Namespace) -> int:
    from .serialize import read_manifest

    manifest = read_manifest(args.path)
    summary = {
        "name": manifest.get("name"),
        "format_version": manifest.get("format_version"),
        "encoder": manifest.get("encoder"),
        "num_layers": len(manifest.get("layers", [])),
        "layers": [entry.get("kind") for entry in manifest.get("layers", [])],
        "metadata": manifest.get("metadata", {}),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _run_list(args: argparse.Namespace) -> int:
    from .registry import ModelRegistry

    registry = ModelRegistry(args.root)
    models = registry.list_models()
    if not models:
        print(f"(no artifacts under {args.root})")
        return 0
    for name in sorted(models):
        print(f"{name}: {', '.join(sorted(models[name]))}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    from .serialize import ArtifactError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _run_demo(args)
        if args.command == "inspect":
            return _run_inspect(args)
        if args.command == "list":
            return _run_list(args)
    except (ArtifactError, ValueError) as error:
        print(f"repro-serve: error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
