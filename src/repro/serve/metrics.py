"""Serving telemetry: per-request records and aggregate latency/throughput stats.

The server records one entry per retired request — its adaptive latency in
timesteps, its wall-clock latency (queue wait + simulation), and the batch it
was coalesced into.  Aggregation produces the quantities a serving dashboard
would plot: p50/p95/p99 latency in both units — wall-clock additionally split
into its queue-wait and compute components, so a scheduler speedup (which
moves compute, not queueing) is visible from the CLI — requests-per-second,
mean batch size, and spikes per inference (the SNN energy proxy).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["RequestRecord", "MetricsSnapshot", "ServingMetrics"]


@dataclass
class RequestRecord:
    """Telemetry of one served request."""

    model: str
    timesteps: int
    wall_ms: float
    queue_ms: float
    batch_size: int
    spikes: float


@dataclass
class MetricsSnapshot:
    """Aggregate view over every record seen so far.

    Wall-clock latency is reported whole (``*_wall_ms`` — queue wait plus
    simulation) and split into its two components: ``*_queue_ms`` (time
    coalescing in the micro-batcher) and ``*_compute_ms`` (time inside the
    engine).  Each carries mean/p50/p95/p99 so tail behaviour — the number a
    latency SLO is written against — is visible next to the median.
    """

    count: int
    elapsed_seconds: float
    throughput_rps: float
    p50_timesteps: float
    p95_timesteps: float
    mean_timesteps: float
    p50_wall_ms: float
    p95_wall_ms: float
    p99_wall_ms: float
    mean_wall_ms: float
    p50_queue_ms: float
    p95_queue_ms: float
    p99_queue_ms: float
    mean_queue_ms: float
    p50_compute_ms: float
    p95_compute_ms: float
    p99_compute_ms: float
    mean_compute_ms: float
    mean_batch_size: float
    spikes_per_inference: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)

    def report(self) -> str:
        lines = [
            f"requests served      : {self.count}",
            f"throughput           : {self.throughput_rps:.2f} req/s over {self.elapsed_seconds:.2f}s",
            f"latency (timesteps)  : mean {self.mean_timesteps:.1f} · p50 {self.p50_timesteps:.0f} · p95 {self.p95_timesteps:.0f}",
            f"latency (wall-clock) : mean {self.mean_wall_ms:.1f}ms · p50 {self.p50_wall_ms:.1f}ms · p95 {self.p95_wall_ms:.1f}ms · p99 {self.p99_wall_ms:.1f}ms",
            f"  queue wait         : mean {self.mean_queue_ms:.1f}ms · p50 {self.p50_queue_ms:.1f}ms · p95 {self.p95_queue_ms:.1f}ms · p99 {self.p99_queue_ms:.1f}ms",
            f"  compute            : mean {self.mean_compute_ms:.1f}ms · p50 {self.p50_compute_ms:.1f}ms · p95 {self.p95_compute_ms:.1f}ms · p99 {self.p99_compute_ms:.1f}ms",
            f"batch size           : mean {self.mean_batch_size:.1f}",
            f"spikes per inference : {self.spikes_per_inference:.0f}",
        ]
        return "\n".join(lines)


class ServingMetrics:
    """Thread-safe accumulator of :class:`RequestRecord` entries."""

    def __init__(self) -> None:
        self._records: List[RequestRecord] = []
        self._lock = threading.Lock()
        self._started = time.perf_counter()

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)

    def records(self, model: Optional[str] = None) -> List[RequestRecord]:
        with self._lock:
            records = list(self._records)
        if model is not None:
            records = [r for r in records if r.model == model]
        return records

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._started = time.perf_counter()

    def snapshot(self, model: Optional[str] = None) -> MetricsSnapshot:
        records = self.records(model)
        elapsed = time.perf_counter() - self._started
        if not records:
            zeros = {f.name: 0.0 for f in dataclasses.fields(MetricsSnapshot)}
            return MetricsSnapshot(**{**zeros, "count": 0, "elapsed_seconds": elapsed})
        timesteps = np.array([r.timesteps for r in records], dtype=np.float64)
        wall = np.array([r.wall_ms for r in records], dtype=np.float64)
        queue = np.array([r.queue_ms for r in records], dtype=np.float64)
        # The wall-clock a client saw decomposes into queue wait + engine
        # compute; recording keeps the sum, so the component is recovered.
        compute = wall - queue
        batches = np.array([r.batch_size for r in records], dtype=np.float64)
        spikes = np.array([r.spikes for r in records], dtype=np.float64)
        return MetricsSnapshot(
            count=len(records),
            elapsed_seconds=elapsed,
            throughput_rps=len(records) / elapsed if elapsed > 0 else 0.0,
            p50_timesteps=float(np.percentile(timesteps, 50)),
            p95_timesteps=float(np.percentile(timesteps, 95)),
            mean_timesteps=float(timesteps.mean()),
            p50_wall_ms=float(np.percentile(wall, 50)),
            p95_wall_ms=float(np.percentile(wall, 95)),
            p99_wall_ms=float(np.percentile(wall, 99)),
            mean_wall_ms=float(wall.mean()),
            p50_queue_ms=float(np.percentile(queue, 50)),
            p95_queue_ms=float(np.percentile(queue, 95)),
            p99_queue_ms=float(np.percentile(queue, 99)),
            mean_queue_ms=float(queue.mean()),
            p50_compute_ms=float(np.percentile(compute, 50)),
            p95_compute_ms=float(np.percentile(compute, 95)),
            p99_compute_ms=float(np.percentile(compute, 99)),
            mean_compute_ms=float(compute.mean()),
            mean_batch_size=float(batches.mean()),
            spikes_per_inference=float(spikes.mean()),
        )
