"""Serving telemetry: per-request records and aggregate latency/throughput stats.

The server records one entry per retired request — its adaptive latency in
timesteps, its wall-clock latency (queue wait + simulation), and the batch it
was coalesced into.  Aggregation produces the quantities a serving dashboard
would plot: p50/p95/p99 latency in both units — wall-clock additionally split
into its queue-wait and compute components, so a scheduler speedup (which
moves compute, not queueing) is visible from the CLI — requests-per-second,
mean batch size, and spikes per inference (the SNN energy proxy).

Retention is bounded: records live in a ring buffer (``capacity`` entries,
default 65 536) so a long-running server's memory stays constant however
much traffic it serves.  ``total_count`` streams over *every* record ever
seen, while percentile aggregation runs over the retained window — the same
window/stream split :class:`repro.obs.Histogram` uses.  Throughput is
derived from the first→last record timestamps of the window actually
aggregated, not from the accumulator's construction time, so idle time
before traffic arrives (or after it stops) no longer dilutes the rate.

Every :meth:`ServingMetrics.record` also feeds the observability registry
(:func:`repro.obs.global_registry` unless one is injected): the
``serve.requests`` counter and the ``serve.wall_ms`` / ``serve.queue_ms`` /
``serve.compute_ms`` / ``serve.batch_size`` / ``serve.timesteps``
histograms, so serving latency shows up next to executor metrics (pipeline
handoff waits, shard walls) in one ``MetricsRegistry.snapshot()``.

The admission-control surface adds three more instruments the servers
drive directly: the ``serve.shed`` counter (:meth:`ServingMetrics.record_shed`
— requests rejected with :class:`~repro.serve.admission.Overloaded`), the
``serve.queue_depth`` gauge (:meth:`ServingMetrics.set_queue_depth` —
admitted-but-uncompleted requests, updated on every admit/complete), and
per-worker ``serve.worker.<id>.utilization`` gauges
(:meth:`ServingMetrics.set_worker_utilization` — the fraction of wall time
a pool worker spent computing since the last report).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Union

import numpy as np

from ..obs import MetricsRegistry, global_registry

__all__ = ["DEFAULT_CAPACITY", "RequestRecord", "MetricsSnapshot", "ServingMetrics"]

#: Default ring-buffer capacity: ~65k records ≈ a few MB, hours of traffic
#: at serving rates, constant forever after.
DEFAULT_CAPACITY = 65536


@dataclass
class RequestRecord:
    """Telemetry of one served request.

    ``recorded_at`` (``time.perf_counter`` at construction) is the
    timestamp throughput derives from — the span between the first and last
    record of a window is the time traffic actually flowed.
    """

    model: str
    timesteps: int
    wall_ms: float
    queue_ms: float
    batch_size: int
    spikes: float
    recorded_at: float = field(default_factory=time.perf_counter)


@dataclass
class MetricsSnapshot:
    """Aggregate view over the retained record window.

    Wall-clock latency is reported whole (``*_wall_ms`` — queue wait plus
    simulation) and split into its two components: ``*_queue_ms`` (time
    coalescing in the micro-batcher) and ``*_compute_ms`` (time inside the
    engine).  Each carries mean/p50/p95/p99 so tail behaviour — the number a
    latency SLO is written against — is visible next to the median.

    ``count`` is the number of records aggregated (bounded by the ring
    buffer); ``total_count`` the number ever recorded.  ``elapsed_seconds``
    spans the first→last aggregated record and is what ``throughput_rps``
    divides by, so idle periods outside the traffic window don't skew the
    rate (a single-record window has no measurable span and reports 0).
    """

    count: int
    total_count: int
    elapsed_seconds: float
    throughput_rps: float
    p50_timesteps: float
    p95_timesteps: float
    mean_timesteps: float
    p50_wall_ms: float
    p95_wall_ms: float
    p99_wall_ms: float
    mean_wall_ms: float
    p50_queue_ms: float
    p95_queue_ms: float
    p99_queue_ms: float
    mean_queue_ms: float
    p50_compute_ms: float
    p95_compute_ms: float
    p99_compute_ms: float
    mean_compute_ms: float
    mean_batch_size: float
    spikes_per_inference: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)

    def report(self) -> str:
        lines = [
            f"requests served      : {self.total_count}",
            f"throughput           : {self.throughput_rps:.2f} req/s over {self.elapsed_seconds:.2f}s of traffic",
            f"latency (timesteps)  : mean {self.mean_timesteps:.1f} · p50 {self.p50_timesteps:.0f} · p95 {self.p95_timesteps:.0f}",
            f"latency (wall-clock) : mean {self.mean_wall_ms:.1f}ms · p50 {self.p50_wall_ms:.1f}ms · p95 {self.p95_wall_ms:.1f}ms · p99 {self.p99_wall_ms:.1f}ms",
            f"  queue wait         : mean {self.mean_queue_ms:.1f}ms · p50 {self.p50_queue_ms:.1f}ms · p95 {self.p95_queue_ms:.1f}ms · p99 {self.p99_queue_ms:.1f}ms",
            f"  compute            : mean {self.mean_compute_ms:.1f}ms · p50 {self.p50_compute_ms:.1f}ms · p95 {self.p95_compute_ms:.1f}ms · p99 {self.p99_compute_ms:.1f}ms",
            f"batch size           : mean {self.mean_batch_size:.1f}",
            f"spikes per inference : {self.spikes_per_inference:.0f}",
        ]
        if self.count < self.total_count:
            lines.append(
                f"(percentiles over the most recent {self.count} of {self.total_count} requests)"
            )
        return "\n".join(lines)


class ServingMetrics:
    """Thread-safe, bounded accumulator of :class:`RequestRecord` entries."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: Deque[RequestRecord] = deque(maxlen=capacity)
        self._total = 0
        self._sheds = 0
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else global_registry()

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)
            self._total += 1
        registry = self._registry
        registry.counter("serve.requests").add()
        registry.histogram("serve.wall_ms").observe(record.wall_ms)
        registry.histogram("serve.queue_ms").observe(record.queue_ms)
        registry.histogram("serve.compute_ms").observe(record.wall_ms - record.queue_ms)
        registry.histogram("serve.batch_size").observe(record.batch_size)
        registry.histogram("serve.timesteps").observe(record.timesteps)

    def record_shed(self) -> None:
        """Count one request rejected by admission control (``serve.shed``)."""

        with self._lock:
            self._sheds += 1
        self._registry.counter("serve.shed").add()

    @property
    def sheds(self) -> int:
        """Requests shed with ``Overloaded`` since construction."""

        with self._lock:
            return self._sheds

    def set_queue_depth(self, depth: int) -> None:
        """Publish the admitted-but-uncompleted request count (``serve.queue_depth``)."""

        self._registry.gauge("serve.queue_depth").set(float(depth))

    def set_worker_utilization(self, worker: Union[int, str], fraction: float) -> None:
        """Publish one worker's busy fraction (``serve.worker.<id>.utilization``)."""

        self._registry.gauge(f"serve.worker.{worker}.utilization").set(float(fraction))

    def records(self, model: Optional[str] = None) -> List[RequestRecord]:
        """The retained window (oldest first), optionally filtered by model."""

        with self._lock:
            records = list(self._records)
        if model is not None:
            records = [r for r in records if r.model == model]
        return records

    @property
    def count(self) -> int:
        """Records ever seen (streaming — not capped by the ring buffer)."""

        with self._lock:
            return self._total

    @property
    def retained(self) -> int:
        """Records currently held in the ring buffer."""

        with self._lock:
            return len(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._total = 0
            self._sheds = 0

    def snapshot(self, model: Optional[str] = None) -> MetricsSnapshot:
        records = self.records(model)
        with self._lock:
            total = self._total
        if not records:
            zeros = {f.name: 0.0 for f in dataclasses.fields(MetricsSnapshot)}
            return MetricsSnapshot(
                **{**zeros, "count": 0, "total_count": total if model is None else 0}
            )
        # Throughput over the window traffic actually spanned: first→last
        # record timestamp.  One record has no measurable span, so the rate
        # is reported as 0 rather than an idle-time-diluted guess.
        elapsed = records[-1].recorded_at - records[0].recorded_at
        throughput = (len(records) / elapsed) if elapsed > 0 else 0.0
        # reprolint: allow[dtype] -- telemetry aggregation stays at full precision regardless of the compute policy
        timesteps = np.array([r.timesteps for r in records], dtype=np.float64)
        wall = np.array([r.wall_ms for r in records], dtype=np.float64)  # reprolint: allow[dtype] -- telemetry
        queue = np.array([r.queue_ms for r in records], dtype=np.float64)  # reprolint: allow[dtype] -- telemetry
        # The wall-clock a client saw decomposes into queue wait + engine
        # compute; recording keeps the sum, so the component is recovered.
        compute = wall - queue
        batches = np.array([r.batch_size for r in records], dtype=np.float64)  # reprolint: allow[dtype] -- telemetry
        spikes = np.array([r.spikes for r in records], dtype=np.float64)  # reprolint: allow[dtype] -- telemetry
        return MetricsSnapshot(
            count=len(records),
            total_count=total if model is None else len(records),
            elapsed_seconds=float(elapsed),
            throughput_rps=float(throughput),
            p50_timesteps=float(np.percentile(timesteps, 50)),
            p95_timesteps=float(np.percentile(timesteps, 95)),
            mean_timesteps=float(timesteps.mean()),
            p50_wall_ms=float(np.percentile(wall, 50)),
            p95_wall_ms=float(np.percentile(wall, 95)),
            p99_wall_ms=float(np.percentile(wall, 99)),
            mean_wall_ms=float(wall.mean()),
            p50_queue_ms=float(np.percentile(queue, 50)),
            p95_queue_ms=float(np.percentile(queue, 95)),
            p99_queue_ms=float(np.percentile(queue, 99)),
            mean_queue_ms=float(queue.mean()),
            p50_compute_ms=float(np.percentile(compute, 50)),
            p95_compute_ms=float(np.percentile(compute, 95)),
            p99_compute_ms=float(np.percentile(compute, 99)),
            mean_compute_ms=float(compute.mean()),
            mean_batch_size=float(batches.mean()),
            spikes_per_inference=float(spikes.mean()),
        )
