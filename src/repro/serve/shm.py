"""Shared-memory artifact segments for the multi-process serving tier.

A published bundle's flat block (:mod:`repro.serve.serialize`) is copied
*once* into a :class:`multiprocessing.shared_memory.SharedMemory` segment by
the serving parent; every worker process then attaches the segment by name
and rebuilds its :class:`~repro.snn.SpikingNetwork` over zero-copy
``np.frombuffer`` views of the same physical pages.  N workers serving one
model hold one weight payload between them instead of N — for int8
``infer8`` bundles the whole fleet shares a quarter-size block.

Ownership protocol
------------------
* :func:`share_artifact` (parent) creates the segment and returns a
  :class:`SharedArtifact` handle that owns it.  The parent must call
  :meth:`SharedArtifact.close` when the model is retired or replaced;
  close both unmaps and unlinks.  Unlinking while workers are attached is
  safe and deliberate — POSIX keeps the pages alive until the last mapping
  drops, so hot-swapping a model never torpedoes inflight batches.
* :func:`attach_shared_artifact` (worker) attaches by name and returns an
  :class:`AttachedArtifact` whose network's float weights alias the
  segment.  The worker must call :meth:`AttachedArtifact.close` before
  loading a replacement; close drops the network and view references
  before unmapping (``SharedMemory.close`` raises ``BufferError`` while
  ndarray views are alive).

Every create/attach in this module pairs with ``close()``/``unlink()`` in
a ``finally`` — the ``reprolint`` ``shm`` rule enforces the same
discipline repo-wide.
"""

from __future__ import annotations

import gc
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .serialize import (
    ARRAYS_FILE,
    ArtifactError,
    FLAT_FILE,
    arrays_from_buffer,
    flat_block_bytes,
    flat_layout,
    network_from_manifest,
    read_manifest,
)

__all__ = ["SharedArtifact", "AttachedArtifact", "share_artifact", "attach_shared_artifact"]


def _flat_block_for(path: Path, manifest: Dict) -> tuple[Dict, memoryview]:
    """Return ``(layout, block)`` for the bundle at ``path``.

    Prefers the on-disk flat block (memory-mapped, so the copy into the
    segment streams straight from the page cache); pre-flat bundles fall
    back to decompressing the npz and packing a block in memory.
    """

    flat = manifest.get("flat")
    if isinstance(flat, dict) and "arrays" in flat:
        flat_path = path / str(flat.get("file", FLAT_FILE))
        size = int(flat.get("size", 0))
        if flat_path.is_file() and flat_path.stat().st_size >= size:
            if size == 0:
                return flat, memoryview(b"")
            raw = np.memmap(flat_path, dtype=np.uint8, mode="r")
            return flat, memoryview(raw)[:size]
    arrays_path = path / ARRAYS_FILE
    if not arrays_path.is_file():
        raise ArtifactError(f"no serving artifact at {path}: missing {ARRAYS_FILE}")
    with np.load(arrays_path) as stored:
        arrays = {key: stored[key] for key in stored.files}
    layout = flat_layout(arrays)
    return layout, memoryview(flat_block_bytes(arrays, layout))


class SharedArtifact:
    """Parent-side handle owning one shared-memory weight segment."""

    __slots__ = ("name", "manifest", "layout", "size", "_shm", "_closed")

    def __init__(self, shm: shared_memory.SharedMemory, manifest: Dict, layout: Dict) -> None:
        self._shm = shm
        self.name = shm.name
        self.manifest = manifest
        self.layout = layout
        self.size = int(layout.get("size", 0))
        self._closed = False

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent).

        Attached workers keep serving off the orphaned pages until they
        drop their own mappings — this is the hot-swap path, not a fault.
        """

        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked (double-retire race)
                pass

    def __enter__(self) -> "SharedArtifact":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def share_artifact(path: Union[str, Path], manifest: Optional[Dict] = None) -> "SharedArtifact":
    """Copy the bundle at ``path`` into a fresh shared-memory segment.

    Returns the owning :class:`SharedArtifact`; the caller is responsible
    for :meth:`SharedArtifact.close` once every worker has been told to
    detach (or immediately on hot-swap — see the module docstring).
    """

    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)
    layout, block = _flat_block_for(path, manifest)
    # SharedMemory rejects size 0; a layer-less bundle still gets a
    # 1-byte segment so the attach protocol stays uniform.
    shm = shared_memory.SharedMemory(create=True, size=max(int(layout.get("size", 0)), 1))
    installed = False
    try:
        size = int(layout.get("size", 0))
        if size:
            shm.buf[:size] = block
        handle = SharedArtifact(shm, manifest, layout)
        installed = True
        return handle
    finally:
        if not installed:
            shm.close()
            shm.unlink()


class AttachedArtifact:
    """Worker-side handle over a segment created by :func:`share_artifact`.

    ``network`` is a :class:`~repro.snn.SpikingNetwork` whose stored
    arrays are read-only views into the segment wherever the recorded
    compute-policy profile allows zero-copy reconstruction (matching
    float dtypes, int8 quantized payloads).
    """

    __slots__ = ("name", "manifest", "network", "_shm", "_views", "_closed")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: Dict,
        network,
        views: Dict[str, np.ndarray],
    ) -> None:
        self._shm = shm
        self.name = shm.name
        self.manifest = manifest
        self.network = network
        self._views = views
        self._closed = False

    def close(self) -> None:
        """Drop the network and every view, then unmap (idempotent)."""

        if self._closed:
            return
        self._closed = True
        self.network = None
        self._views = {}
        # SharedMemory.close raises BufferError while any exported ndarray
        # view is alive; the network's layers held the last references, so
        # one collection pass frees them before the unmap.
        gc.collect()
        self._shm.close()

    def __enter__(self) -> "AttachedArtifact":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def attach_shared_artifact(name: str, manifest: Dict) -> "AttachedArtifact":
    """Attach the segment ``name`` and rebuild its network zero-copy.

    ``manifest`` is the bundle manifest the parent shipped alongside the
    segment name (it carries the flat offset table).  The caller owns the
    returned handle and must :meth:`AttachedArtifact.close` it before
    attaching a replacement segment for the same model.
    """

    flat = manifest.get("flat")
    if not isinstance(flat, dict) or "arrays" not in flat:
        raise ArtifactError(f"shared segment {name!r}: manifest has no flat offset table")
    shm = shared_memory.SharedMemory(name=name)
    views: Dict[str, np.ndarray] = {}
    installed = False
    try:
        # CPython 3.11 registers the segment with the resource tracker on
        # attach as well as on create.  Fork-started workers share the
        # parent's tracker process, where the duplicate register is a
        # set-add no-op and the parent's eventual unlink settles the books
        # — which is why the pool pins the "fork" start method.  (Spawned
        # children get their *own* tracker, which would unlink the segment
        # out from under everyone at worker exit: bpo-38119.)
        views = arrays_from_buffer(shm.buf, flat)
        network = network_from_manifest(manifest, views, origin=f"shared segment {name!r}")
        handle = AttachedArtifact(shm, manifest, network, views)
        installed = True
        return handle
    finally:
        if not installed:
            views = {}
            gc.collect()
            try:
                shm.close()
            except BufferError:  # in-flight traceback still pins a view
                pass
