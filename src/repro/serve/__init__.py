"""Inference serving for converted spiking networks.

The subsystem turns a :class:`~repro.core.ConversionResult` into a servable
on-disk artifact and runs adaptive-latency inference against it:

* :mod:`repro.serve.serialize` — ``.npz`` + JSON artifact bundles,
* :mod:`repro.serve.registry` — versioned storage with a bounded LRU cache,
* :mod:`repro.serve.engine` — per-sample early-exit simulation with batch
  compaction, simulation-backend override (dense / event-driven / auto) and
  execution-scheduler override (sequential / pipelined / sharded),
* :mod:`repro.serve.batcher` — dynamic micro-batching of single requests,
* :mod:`repro.serve.server` — threaded worker loop plus futures API,
* :mod:`repro.serve.metrics` — p50/p95/p99 latency (queue and compute
  components split out), throughput and energy-proxy telemetry,
* :mod:`repro.serve.cli` — the ``repro-serve`` console entry point.
"""

from ..core.conversion import register_artifact_writer
from .serialize import FORMAT_VERSION, ArtifactError, LoadedArtifact, load_artifact, read_manifest, save_artifact
from .registry import ModelRegistry
from .engine import AdaptiveConfig, AdaptiveEngine, InferenceOutcome
from .batcher import InferenceRequest, MicroBatcher
from .metrics import MetricsSnapshot, RequestRecord, ServingMetrics
from .server import InferenceReply, InferenceServer

# Close the dependency inversion: core's ConversionResult.save persists via
# whatever writer the serving tier registers, so core never imports upward.
register_artifact_writer(save_artifact)

__all__ = [
    "FORMAT_VERSION",
    "ArtifactError",
    "LoadedArtifact",
    "load_artifact",
    "read_manifest",
    "save_artifact",
    "ModelRegistry",
    "AdaptiveConfig",
    "AdaptiveEngine",
    "InferenceOutcome",
    "InferenceRequest",
    "MicroBatcher",
    "MetricsSnapshot",
    "RequestRecord",
    "ServingMetrics",
    "InferenceReply",
    "InferenceServer",
]
