"""Inference serving for converted spiking networks.

The subsystem turns a :class:`~repro.core.ConversionResult` into a servable
on-disk artifact and runs adaptive-latency inference against it:

* :mod:`repro.serve.serialize` — ``.npz`` + JSON artifact bundles with a
  memory-mappable flat-buffer weight block,
* :mod:`repro.serve.registry` — versioned storage with a bounded LRU cache
  and per-model replica counts,
* :mod:`repro.serve.engine` — per-sample early-exit simulation with batch
  compaction, simulation-backend override (dense / event-driven / auto) and
  execution-scheduler override (sequential / pipelined / sharded),
* :mod:`repro.serve.batcher` — dynamic micro-batching of single requests,
* :mod:`repro.serve.server` — threaded worker loop plus futures API,
* :mod:`repro.serve.pool` — multi-process worker pool over shared-memory
  artifacts (one physical weight copy per model, however many workers),
* :mod:`repro.serve.shm` — shared-memory artifact segments and zero-copy
  worker-side network reconstruction,
* :mod:`repro.serve.admission` — bounded inflight budget with the typed
  :class:`~repro.serve.admission.Overloaded` load-shed reply,
* :mod:`repro.serve.metrics` — p50/p95/p99 latency (queue and compute
  components split out), throughput, queue-depth/shed/utilization gauges
  and energy-proxy telemetry,
* :mod:`repro.serve.cli` — the ``repro-serve`` console entry point.
"""

from ..core.conversion import register_artifact_writer
from .serialize import (
    FORMAT_VERSION,
    ArtifactError,
    LoadedArtifact,
    load_artifact,
    network_from_manifest,
    read_manifest,
    save_artifact,
)
from .registry import ModelRegistry
from .engine import AdaptiveConfig, AdaptiveEngine, InferenceOutcome
from .batcher import InferenceRequest, MicroBatcher
from .metrics import MetricsSnapshot, RequestRecord, ServingMetrics
from .admission import AdmissionController, Overloaded
from .server import InferenceReply, InferenceServer
from .pool import ProcessPoolServer
from .shm import AttachedArtifact, SharedArtifact, attach_shared_artifact, share_artifact

# Close the dependency inversion: core's ConversionResult.save persists via
# whatever writer the serving tier registers, so core never imports upward.
register_artifact_writer(save_artifact)

__all__ = [
    "FORMAT_VERSION",
    "ArtifactError",
    "LoadedArtifact",
    "load_artifact",
    "network_from_manifest",
    "read_manifest",
    "save_artifact",
    "ModelRegistry",
    "AdaptiveConfig",
    "AdaptiveEngine",
    "InferenceOutcome",
    "InferenceRequest",
    "MicroBatcher",
    "MetricsSnapshot",
    "RequestRecord",
    "ServingMetrics",
    "AdmissionController",
    "Overloaded",
    "InferenceReply",
    "InferenceServer",
    "ProcessPoolServer",
    "SharedArtifact",
    "AttachedArtifact",
    "share_artifact",
    "attach_shared_artifact",
]
