"""Multi-process inference: a worker pool over shared-memory artifacts.

The threaded :class:`~repro.serve.server.InferenceServer` tops out at
roughly one core of useful conversion work — numpy releases the GIL inside
kernels, but the per-timestep Python glue (layer dispatch, early-exit
bookkeeping, batch compaction) serialises.  :class:`ProcessPoolServer`
escapes the GIL entirely: ``num_workers`` forked processes each hold a
:class:`~repro.snn.SpikingNetwork` reconstructed **zero-copy** over a
shared-memory segment (:mod:`repro.serve.shm`), so N workers serving one
model share one physical weight payload instead of N copies.

Architecture — three parent threads plus N worker processes:

* **dispatcher** pulls coalesced batches from the
  :class:`~repro.serve.batcher.MicroBatcher`, groups them by
  (model, version), shares the bundle into shared memory on first use (and
  re-shares when the registry's write generation moves — a publish),
  assigns each model to ``ModelRegistry.replicas(name)`` workers, and sends
  ``("infer", ...)`` messages (job id + input batch, pickle-cheap) to the
  least-loaded assigned worker.  Per-worker task queues are FIFO, so a
  ``("load", ...)`` message always lands before the infers that need it.
* **collector** reads one shared reply queue: resolves futures, feeds
  :class:`~repro.serve.metrics.ServingMetrics`, grafts worker span records
  into the parent tracer (:meth:`repro.obs.Tracer.adopt`), and publishes
  per-worker utilization gauges.
* **workers** (forked processes) loop over their task queue: ``load``
  attaches a segment and rebuilds the network, ``infer`` runs the
  :class:`~repro.serve.engine.AdaptiveEngine` (single-threaded per worker,
  so no model lock is needed), ``stop`` detaches everything and exits.

Fault model: a worker death is detected by the dispatcher's liveness sweep;
its inflight jobs are retried once on a surviving assigned worker and
failed with ``RuntimeError`` otherwise, so the ``stop(drain=True)``
contract — *every future accepted by submit completes* — holds across
process death.  Dead workers are not respawned; capacity degrades until
the pool is restarted.

Admission control mirrors the threaded server: ``max_inflight`` bounds
admitted-but-uncompleted requests, and an exhausted budget raises the
typed :class:`~repro.serve.admission.Overloaded` from ``submit`` before
any queueing or pickling happens.

The pool pins the ``fork`` start method: forked workers inherit the
parent's resource-tracker process, which is what makes the shared-memory
attach/unlink bookkeeping sound (see :mod:`repro.serve.shm`), and fork
makes worker startup independent of artifact size (nothing is pickled).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import warnings
from multiprocessing import resource_tracker
from collections import defaultdict, deque
from concurrent.futures import Future
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..obs import Tracer, active_tracer, using_tracer
from ..obs.export import span_record
from .admission import AdmissionController
from .batcher import InferenceRequest, MicroBatcher
from .engine import AdaptiveConfig, AdaptiveEngine
from .metrics import RequestRecord, ServingMetrics
from .registry import ModelRegistry
from .server import InferenceReply
from .shm import SharedArtifact, attach_shared_artifact, share_artifact

__all__ = ["ProcessPoolServer"]

_POLL_SECONDS = 0.05
_JOIN_SECONDS = 5.0


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _serialize_worker_spans(tracer: Tracer, worker_id: int) -> List[dict]:
    """Worker-side span records, with thread ids made globally unique.

    Forked children inherit the parent main thread's ident, so raw thread
    ids would collide across processes and merge unrelated Chrome-trace
    tracks; remap every distinct worker thread onto a pid-derived id and
    prefix the track name with the worker.
    """

    records = [span_record(span, epoch_s=0.0) for span in tracer.finished()]
    pid = os.getpid()
    remap: Dict[int, int] = {}
    for record in records:
        original = int(record.get("thread_id") or 0)
        record["thread_id"] = pid * 1000 + remap.setdefault(original, len(remap))
        record["thread_name"] = f"worker-{worker_id}:{record.get('thread_name', '')}"
    return records


def _worker_main(worker_id: int, task_queue, reply_queue, engine_config: AdaptiveConfig) -> None:
    """Entry point of one forked worker process."""

    from ..obs import set_active_tracer

    # The fork copied the parent's active tracer; records appended to the
    # copy would never be seen, so drop it and trace per-request instead.
    set_active_tracer(None)
    resident: Dict[Tuple[str, str], Tuple[int, object]] = {}
    busy_s = 0.0
    window_start = time.perf_counter()
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "load":
                _, model, version, generation, shm_name, manifest = message
                key = (model, version)
                previous = resident.pop(key, None)
                if previous is not None:
                    try:
                        previous[1].close()
                    except BufferError:  # pragma: no cover - lingering view
                        warnings.warn(f"worker {worker_id}: stale mapping for {key} leaked", RuntimeWarning)
                try:
                    attached = attach_shared_artifact(shm_name, manifest)
                    resident[key] = (generation, attached)
                except Exception as error:
                    reply_queue.put(("load_error", worker_id, model, version, repr(error)))
            elif kind == "infer":
                _, job_id, model, version, images, trace = message
                entry = resident.get((model, version))
                if entry is None:
                    reply_queue.put(
                        ("error", worker_id, job_id, f"model {model}:{version} not resident in worker {worker_id}")
                    )
                    continue
                tracer = Tracer() if trace else None
                started = time.perf_counter()
                try:
                    if tracer is not None:
                        with using_tracer(tracer):
                            with tracer.span("serve:worker-batch", category="serve") as span:
                                span.annotate(worker=worker_id, model=model, version=version, batch_size=len(images))
                                outcome = AdaptiveEngine(entry[1].network, engine_config).infer(images)
                    else:
                        outcome = AdaptiveEngine(entry[1].network, engine_config).infer(images)
                except Exception as error:
                    reply_queue.put(("error", worker_id, job_id, repr(error)))
                    continue
                now = time.perf_counter()
                busy_s += now - started
                # Busy fraction over the window since the last report; the
                # window resets so the gauge tracks recent load, not the
                # lifetime average.
                elapsed = max(now - window_start, 1e-9)
                utilization = min(busy_s / elapsed, 1.0)
                busy_s = 0.0
                window_start = now
                payload = {
                    "predictions": np.asarray(outcome.predictions),
                    "scores": np.asarray(outcome.scores),
                    "exit_timesteps": np.asarray(outcome.exit_timesteps),
                    "mean_timesteps": float(outcome.mean_timesteps),
                    "spikes_per_inference": float(outcome.spikes_per_inference),
                    "wall_seconds": float(outcome.wall_seconds),
                }
                spans = _serialize_worker_spans(tracer, worker_id) if tracer is not None else []
                reply_queue.put(("result", worker_id, job_id, payload, spans, utilization))
    finally:
        for _, attached in resident.values():
            try:
                attached.close()
            except BufferError:  # pragma: no cover - lingering view at exit
                pass


# ---------------------------------------------------------------------------
# Parent
# ---------------------------------------------------------------------------


class _Job:
    """One dispatched batch: the requests behind it and enough to retry it."""

    __slots__ = ("job_id", "model", "version", "requests", "images", "queue_ms", "worker", "attempts")

    def __init__(self, job_id: int, model: str, version: str, requests: List[InferenceRequest], images: np.ndarray) -> None:
        self.job_id = job_id
        self.model = model
        self.version = version
        self.requests = requests
        self.images = images
        # Queue wait is frozen at dispatch: measuring it at completion
        # would fold the worker's compute time into the queue component.
        self.queue_ms = [request.queue_ms for request in requests]
        self.worker: Optional[int] = None
        self.attempts = 0


class ProcessPoolServer:
    """Micro-batching inference over a pool of forked worker processes.

    Drop-in alternative to :class:`~repro.serve.server.InferenceServer`
    (same ``submit``/``infer``/``stop`` surface, same drain contract) that
    scales across cores: each worker process runs the engine free of the
    parent's GIL, over weight buffers shared — not copied — between
    workers.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        engine_config: Optional[AdaptiveConfig] = None,
        batcher: Optional[MicroBatcher] = None,
        metrics: Optional[ServingMetrics] = None,
        num_workers: int = 2,
        max_inflight: Optional[int] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.registry = registry
        self.engine_config = engine_config if engine_config is not None else AdaptiveConfig()
        self.batcher = batcher if batcher is not None else MicroBatcher()
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.num_workers = num_workers
        self.admission = AdmissionController(
            max_inflight,
            on_shed=self.metrics.record_shed,
            on_depth=self.metrics.set_queue_depth,
        )
        self._ctx = multiprocessing.get_context("fork")
        self._processes: List = []
        self._task_queues: List = []
        self._reply_queue = None
        self._dispatcher: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._collector_stop = threading.Event()
        # Parent-side state, guarded by one lock: inflight jobs, per-worker
        # outstanding counts, shared segments and worker residency.
        self._state_lock = threading.Lock()
        self._jobs: Dict[int, _Job] = {}
        self._job_ids = iter(range(1, 2**62))
        self._outstanding: Dict[int, int] = defaultdict(int)
        self._retry: Deque[_Job] = deque()
        self._shared: Dict[Tuple[str, str], Tuple[int, SharedArtifact]] = {}
        self._resident: Dict[int, set] = defaultdict(set)
        self._assignment: Dict[Tuple[str, str], List[int]] = {}
        self._dead: set = set()
        self._closed = False
        self._submit_guard = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._processes) and not self._stop_event.is_set()

    def alive_workers(self) -> List[int]:
        return [
            index
            for index, process in enumerate(self._processes)
            if index not in self._dead and process.is_alive()
        ]

    def start(self) -> "ProcessPoolServer":
        if self._processes:
            raise RuntimeError("server is already running")
        self._stop_event.clear()
        self._collector_stop.clear()
        with self._submit_guard:
            self._closed = False
        # Spawn the resource-tracker process *before* forking: workers then
        # inherit the parent's tracker, whose register/unregister set dedupes
        # across the whole pool.  Forked after-the-fact, each worker would
        # lazily spawn its own tracker on first attach — and that tracker
        # would unlink the "leaked" segment at worker exit, yanking the
        # weights out from under the rest of the pool.
        resource_tracker.ensure_running()
        self._reply_queue = self._ctx.Queue()
        for index in range(self.num_workers):
            task_queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main,
                args=(index, task_queue, self._reply_queue, self.engine_config),
                name=f"repro-serve-pool-{index}",
                daemon=True,
            )
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._dispatcher = threading.Thread(target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True)
        self._collector = threading.Thread(target=self._collect_loop, name="repro-serve-collect", daemon=True)
        self._dispatcher.start()
        self._collector.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the pool; with ``drain`` every inflight request completes first.

        The contract matches the threaded server: every future accepted by
        :meth:`submit` before this call returns is guaranteed to complete —
        dispatched jobs resolve (or are retried/failed by the fault path),
        and anything still queued when the pool shuts down is failed with a
        ``RuntimeError`` instead of being stranded.
        """

        if not self._processes:
            with self._submit_guard:
                self._closed = True
            self._fail_drained()
            self._close_shared()
            return
        if drain:
            while True:
                with self._state_lock:
                    inflight = bool(self._jobs) or bool(self._retry)
                if not inflight and not self.batcher.pending:
                    break
                if self._dispatcher is not None and not self._dispatcher.is_alive():
                    break  # dispatcher died; the leftovers are failed below
                self._stop_event.wait(_POLL_SECONDS)
        self._stop_event.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        for index in self.alive_workers():
            try:
                self._task_queues[index].put(("stop",))
            except (OSError, ValueError):  # queue already torn down
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_SECONDS)
        # Only after every worker has exited (no more replies can arrive)
        # is the collector told to do its final drain and stop.
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join()
            self._collector = None
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()
        if self._reply_queue is not None:
            self._reply_queue.close()
            self._reply_queue.cancel_join_thread()
            self._reply_queue = None
        self._processes = []
        self._task_queues = []
        self._dead = set()
        with self._submit_guard:
            self._closed = True
        with self._state_lock:
            leftovers = list(self._jobs.values()) + list(self._retry)
            self._jobs.clear()
            self._retry.clear()
            self._outstanding.clear()
            self._resident.clear()
            self._assignment.clear()
        for job in leftovers:
            self._fail_job(job, RuntimeError("process pool stopped before the request was served"))
        self._fail_drained()
        self._close_shared()

    def _close_shared(self) -> None:
        with self._state_lock:
            shared = list(self._shared.values())
            self._shared.clear()
        for _, segment in shared:
            segment.close()

    def _fail_drained(self) -> None:
        for request in self.batcher.drain():
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    RuntimeError(
                        f"process pool stopped before request for model {request.model!r} was served"
                    )
                )

    def _fail_job(self, job: _Job, error: Exception) -> None:
        for request in job.requests:
            if not request.future.done():
                request.future.set_exception(error)

    def __enter__(self) -> "ProcessPoolServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request entry points --------------------------------------------------

    def submit(self, image: np.ndarray, model: str, version: Optional[str] = None) -> Future:
        """Enqueue one sample; the future resolves to an :class:`InferenceReply`.

        Raises :class:`~repro.serve.admission.Overloaded` when the
        ``max_inflight`` budget is exhausted, and ``RuntimeError`` once the
        pool has been stopped.
        """

        request = InferenceRequest(image=np.asarray(image), model=model, version=version)
        with self._submit_guard:
            if self._closed:
                raise RuntimeError("process pool has been stopped; no workers will serve this request")
            self.admission.admit()
            future = self.batcher.submit(request)
        future.add_done_callback(self.admission.releaser())
        return future

    def infer(self, image: np.ndarray, model: str, version: Optional[str] = None, timeout: Optional[float] = None) -> InferenceReply:
        """Blocking single-sample inference."""

        return self.submit(image, model, version).result(timeout=timeout)

    # -- dispatcher ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop_event.is_set():
            self._sweep_dead_workers()
            while True:
                with self._state_lock:
                    job = self._retry.popleft() if self._retry else None
                if job is None:
                    break
                self._dispatch_job(job)
            try:
                batch = self.batcher.next_batch(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue
            groups: Dict[Tuple[str, Optional[str]], List[InferenceRequest]] = defaultdict(list)
            for request in batch:
                groups[(request.model, request.version)].append(request)
            for (model, version), requests in groups.items():
                # Claim every future before doing work, mirroring the
                # threaded server: late-cancelled requests drop out here.
                requests = [r for r in requests if r.future.set_running_or_notify_cancel()]
                if not requests:
                    continue
                try:
                    resolved = version if version is not None else self.registry.latest_version(model)
                    images = np.stack([request.image for request in requests])
                except Exception as error:
                    for request in requests:
                        if not request.future.done():
                            request.future.set_exception(error)
                    continue
                job = _Job(next(self._job_ids), model, resolved, requests, images)
                self._dispatch_job(job)

    def _dispatch_job(self, job: _Job) -> None:
        try:
            worker = self._route(job.model, job.version)
        except Exception as error:
            self._fail_job(job, error)
            return
        if worker is None:
            self._fail_job(job, RuntimeError("no alive workers left in the process pool"))
            return
        job.worker = worker
        job.attempts += 1
        with self._state_lock:
            self._jobs[job.job_id] = job
            self._outstanding[worker] += 1
        trace = bool(active_tracer().enabled)
        self._task_queues[worker].put(("infer", job.job_id, job.model, job.version, job.images, trace))

    def _route(self, model: str, version: str) -> Optional[int]:
        """Pick the worker for this (model, version), sharing/loading as needed."""

        alive = self.alive_workers()
        if not alive:
            return None
        key = (model, version)
        generation = self.registry.generation(model, version)
        with self._state_lock:
            entry = self._shared.get(key)
        if entry is None or entry[0] != generation:
            segment = share_artifact(self.registry.artifact_path(model, version))
            with self._state_lock:
                stale = self._shared.get(key)
                self._shared[key] = (generation, segment)
                # Every worker's resident copy of this model is now stale;
                # the load messages below re-attach the assigned ones.
                for resident in self._resident.values():
                    resident.discard(key)
            if stale is not None:
                # Unlink immediately: attached workers keep serving off the
                # orphaned pages until their re-attach lands (POSIX keeps
                # the segment alive until the last mapping drops).
                stale[1].close()
            entry = (generation, segment)
        replicas = self.registry.replicas(model)
        if replicas > len(alive):
            warnings.warn(
                f"model {model!r} declares {replicas} replicas but only {len(alive)} "
                f"pool workers are alive; clamping to {len(alive)}",
                RuntimeWarning,
                stacklevel=2,
            )
            replicas = len(alive)
        with self._state_lock:
            # Snapshot the load counts: the sort keys below must not touch
            # guarded state from inside nested callables.
            load = {w: self._outstanding[w] for w in alive}
            assigned = [w for w in self._assignment.get(key, []) if w in alive]
            if len(assigned) < replicas:
                # Fill the replica set with the least-loaded unassigned workers.
                spare = sorted((w for w in alive if w not in assigned), key=lambda w: load[w])
                assigned = assigned + spare[: replicas - len(assigned)]
                self._assignment[key] = assigned
            needs_load = [w for w in assigned if key not in self._resident[w]]
            for w in needs_load:
                self._resident[w].add(key)
            target = min(assigned, key=lambda w: load[w])
        for w in needs_load:
            # FIFO per-worker queues order this load before any infer sent
            # after it, so optimistic residency marking is safe.
            self._task_queues[w].put(("load", model, version, entry[0], entry[1].name, entry[1].manifest))
        return target

    def _sweep_dead_workers(self) -> None:
        for index, process in enumerate(self._processes):
            if index in self._dead or process.is_alive():
                continue
            self._dead.add(index)
            with self._state_lock:
                orphaned = [job for job in self._jobs.values() if job.worker == index]
                for job in orphaned:
                    del self._jobs[job.job_id]
                self._outstanding.pop(index, None)
                self._resident.pop(index, None)
                for key, workers in list(self._assignment.items()):
                    self._assignment[key] = [w for w in workers if w != index]
            warnings.warn(
                f"pool worker {index} (pid {process.pid}) died with exit code "
                f"{process.exitcode}; retrying its {len(orphaned)} inflight job(s)",
                RuntimeWarning,
                stacklevel=2,
            )
            for job in orphaned:
                if job.attempts >= 2:
                    self._fail_job(
                        job,
                        RuntimeError(
                            f"pool worker died serving model {job.model!r} and the retry "
                            f"was exhausted (exit code {process.exitcode})"
                        ),
                    )
                else:
                    with self._state_lock:
                        self._retry.append(job)

    # -- collector -------------------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            try:
                reply = self._reply_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if self._collector_stop.is_set():
                    return
                continue
            except (OSError, ValueError):  # queue torn down under us
                return
            kind = reply[0]
            if kind == "result":
                _, worker, job_id, payload, spans, utilization = reply
                self._finish_job(worker, job_id, payload, spans, utilization)
            elif kind == "error":
                _, worker, job_id, message = reply
                self._error_job(worker, job_id, message)
            elif kind == "load_error":
                _, worker, model, version, message = reply
                with self._state_lock:
                    self._resident[worker].discard((model, version))
                warnings.warn(
                    f"pool worker {worker} failed to attach model {model}:{version}: {message}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _pop_job(self, worker: int, job_id: int) -> Optional[_Job]:
        with self._state_lock:
            job = self._jobs.pop(job_id, None)
            if job is not None and self._outstanding.get(worker, 0) > 0:
                self._outstanding[worker] -= 1
        return job

    def _finish_job(self, worker: int, job_id: int, payload: Dict, spans: List[dict], utilization: float) -> None:
        self.metrics.set_worker_utilization(worker, utilization)
        job = self._pop_job(worker, job_id)
        if job is None:
            return  # already failed/retried by the fault path
        tracer = active_tracer()
        if tracer.enabled and spans:
            tracer.adopt(spans)
        wall_ms = payload["wall_seconds"] * 1000.0
        queue_ms = job.queue_ms
        for position, request in enumerate(job.requests):
            reply = InferenceReply(
                prediction=int(payload["predictions"][position]),
                scores=payload["scores"][position],
                timesteps=int(payload["exit_timesteps"][position]),
                wall_ms=wall_ms,
                model=job.model,
                version=job.version,
            )
            self.metrics.record(
                RequestRecord(
                    model=job.model,
                    timesteps=reply.timesteps,
                    wall_ms=wall_ms + queue_ms[position],
                    queue_ms=queue_ms[position],
                    batch_size=len(job.requests),
                    spikes=payload["spikes_per_inference"],
                )
            )
            if not request.future.done():
                request.future.set_result(reply)

    def _error_job(self, worker: int, job_id: int, message: str) -> None:
        job = self._pop_job(worker, job_id)
        if job is None:
            return
        if job.attempts < 2 and len(self.alive_workers()) > 0:
            # One retry — e.g. the worker's load failed or its resident copy
            # was swept between dispatch and execution.
            with self._state_lock:
                self._retry.append(job)
            return
        self._fail_job(job, RuntimeError(f"pool worker {worker} failed the request: {message}"))
