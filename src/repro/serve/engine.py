"""Adaptive-latency inference engine for converted spiking networks.

The TCL conversion makes near-ANN accuracy reachable at latencies of ~100
timesteps instead of ~1000 — which turns per-sample adaptive latency into the
natural serving primitive: most inputs produce a stable prediction long before
the worst-case latency, so the engine retires each sample as soon as its
prediction is confident and keeps simulating only the undecided remainder.

Two retirement rules can be combined:

* **stability window** — the arg-max class has not changed for
  ``stability_window`` consecutive timesteps;
* **softmax margin** — the softmax (over per-timestep firing rates,
  ``scores / t``) puts at least ``margin_threshold`` more probability on the
  top class than on the runner-up.

Retired samples are removed from the active batch via the network's
:meth:`~repro.snn.SpikingNetwork.compact` support, so later timesteps run on
ever-smaller batches.  With the deterministic real (constant-current) coding
the paper uses, per-sample results are identical to simulating each sample
alone for its exit latency; under stochastic Poisson coding the spike draws
depend on the active-batch shape, so per-sample results vary with batch
composition exactly as they vary across Poisson runs in general.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..obs import active_tracer
from ..runtime import ComputePolicy, resolve_policy, validate_policy_spec
from ..snn.backend import Backend, validate_backend_spec
from ..snn.executor import (
    ExecutionPlan,
    Scheduler,
    StepHook,
    resolve_scheduler,
    validate_scheduler_spec,
)
from ..snn.network import SpikingNetwork

__all__ = ["AdaptiveConfig", "InferenceOutcome", "AdaptiveEngine"]


@dataclass
class AdaptiveConfig:
    """Retirement policy of the adaptive engine.

    ``adaptive=False`` disables early exit entirely: every sample runs the
    full ``max_timesteps`` (the fixed-T baseline the benchmarks compare
    against).

    ``backend`` overrides the network's simulation backend for every engine
    run (``"dense"``/``"event"``/``"auto"`` or a
    :class:`~repro.snn.Backend` instance); ``None`` keeps whatever the
    network — typically the loaded artifact's recorded choice — already
    uses.  Event-driven simulation compounds with batch compaction: as
    samples retire, the shrinking batch drives the active-unit fraction
    down, which is exactly where the sparse kernels win.

    ``precision`` likewise overrides the network's compute-policy profile
    (``"train64"``/``"infer32"``/``"infer8"`` or a
    :class:`~repro.runtime.ComputePolicy` instance); ``None`` keeps the
    network's current policy — typically the loaded artifact's recorded
    profile.  Overriding a float profile with ``"infer8"`` quantizes the
    live network's weights (and ``"train64"`` on an ``infer8`` network
    dequantizes them), with the loss documented on
    :meth:`~repro.snn.SpikingLayer.set_policy`.

    ``scheduler`` chooses the execution scheduler of every engine run
    (``"sequential"``/``"pipelined"``/``"sharded"`` or a
    :class:`~repro.snn.Scheduler` instance); ``None`` keeps the network's
    current scheduler — typically the loaded artifact's recorded choice.
    Early exit needs every layer at one consistent timestep before it can
    retire samples, so the pipelined wavefront degrades to sequential for
    adaptive runs; sharding composes fully — each batch shard runs the
    early-exit loop on its own replica and compacts independently, with
    per-sample results identical under the deterministic real coding
    (Poisson draws redraw per shard, as they already vary with batch
    composition under compaction).
    """

    max_timesteps: int = 200
    min_timesteps: int = 10
    stability_window: int = 20
    margin_threshold: Optional[float] = None
    adaptive: bool = True
    backend: Optional[Union[str, Backend]] = None
    precision: Optional[Union[str, ComputePolicy]] = None
    scheduler: Optional[Union[str, Scheduler]] = None

    def __post_init__(self) -> None:
        if self.max_timesteps <= 0:
            raise ValueError(f"max_timesteps must be positive, got {self.max_timesteps}")
        if self.min_timesteps < 1:
            raise ValueError(f"min_timesteps must be >= 1, got {self.min_timesteps}")
        if self.min_timesteps > self.max_timesteps:
            raise ValueError(
                f"min_timesteps ({self.min_timesteps}) must not exceed max_timesteps ({self.max_timesteps}); "
                "an inverted range would silently disable early exit"
            )
        if self.stability_window < 1:
            raise ValueError(f"stability_window must be >= 1, got {self.stability_window}")
        if self.margin_threshold is not None and not 0.0 < self.margin_threshold <= 1.0:
            raise ValueError(f"margin_threshold must lie in (0, 1], got {self.margin_threshold}")
        validate_backend_spec(self.backend, allow_none=True)
        validate_policy_spec(self.precision, allow_none=True)
        validate_scheduler_spec(self.scheduler, allow_none=True)

    @classmethod
    def for_artifact(cls, artifact, **overrides) -> "AdaptiveConfig":
        """Serving defaults sized to a loaded artifact's conversion.

        Low-latency bundles record the simulation budget T their conversion
        passes were calibrated for (``LoadedArtifact.recommended_timesteps``);
        simulating past it buys no accuracy and costs linearly, so the
        returned config caps ``max_timesteps`` at the budget — instead of
        the generic 200-step default — and shrinks ``min_timesteps`` /
        ``stability_window`` to fit inside it.  Standard bundles (and plain
        ``ConversionResult`` objects, which expose the same attribute) get
        the stock defaults.  Keyword overrides win over both.
        """

        recommended = getattr(artifact, "recommended_timesteps", None)
        defaults = {}
        if recommended is not None:
            budget = int(recommended)
            defaults = {
                "max_timesteps": budget,
                "min_timesteps": min(cls.min_timesteps, budget),
                "stability_window": min(cls.stability_window, budget),
            }
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class InferenceOutcome:
    """Per-sample results of one engine invocation."""

    scores: np.ndarray
    exit_timesteps: np.ndarray
    max_timesteps: int
    total_spikes: float = 0.0
    wall_seconds: float = 0.0
    predictions: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.predictions = self.scores.argmax(axis=1)

    @property
    def mean_timesteps(self) -> float:
        return float(self.exit_timesteps.mean()) if self.exit_timesteps.size else 0.0

    @property
    def spikes_per_inference(self) -> float:
        count = len(self.exit_timesteps)
        return self.total_spikes / count if count else 0.0

    def accuracy(self, labels: np.ndarray) -> float:
        return float((self.predictions == np.asarray(labels)).mean())


def _softmax_margin(scores: np.ndarray, t: int) -> np.ndarray:
    """Top-1 minus top-2 softmax probability of per-timestep firing rates."""

    rates = scores / float(t)
    shifted = rates - rates.max(axis=1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=1, keepdims=True)
    top2 = np.partition(probs, probs.shape[1] - 2, axis=1)[:, -2:]
    return top2[:, 1] - top2[:, 0]


@dataclass
class _EarlyExitResult:
    """One hook's payload: final scores, exit latencies, spike total."""

    scores: np.ndarray
    exit_timesteps: np.ndarray
    total_spikes: float


class _EarlyExitHook(StepHook):
    """The adaptive retirement loop as an executor :class:`StepHook`.

    One instance observes one run over one network (or shard replica): after
    every timestep it reads the output scores, applies the stability-window
    and softmax-margin retirement rules, records retired samples' scores and
    spike budget, and compacts the network and encoder down to the undecided
    remainder.  Under the sharded scheduler each shard gets its own hook, so
    compaction stays shard-local and the per-shard payloads concatenate back
    in order.
    """

    def __init__(self, config: AdaptiveConfig) -> None:
        self.config = config

    def start(self, network: SpikingNetwork, batch_size: int) -> None:
        cfg = self.config
        self.network = network
        self.num_samples = batch_size
        self.final_scores: Optional[np.ndarray] = None
        self.exit_timesteps = np.full(batch_size, cfg.max_timesteps, dtype=np.int64)
        self.active_indices = np.arange(batch_size)
        self.last_prediction = np.full(batch_size, -1, dtype=np.int64)
        self.stable_steps = np.zeros(batch_size, dtype=np.int64)
        self.total_spikes = 0.0

    def _active_spikes(self, mask: np.ndarray) -> float:
        """Total spikes recorded so far for the masked samples of the active batch."""

        total = 0.0
        for layer in self.network.layers:
            for pool in layer.neuron_pools:
                if pool.spike_count is not None:
                    total += float(pool.spike_count[mask].sum())
        return total

    def after_step(self, t: int) -> bool:
        cfg = self.config
        network = self.network
        scores = network.output_layer.scores()
        if self.final_scores is None:
            self.final_scores = np.zeros((self.num_samples, scores.shape[1]), dtype=scores.dtype)

        predictions = scores.argmax(axis=1)
        self.stable_steps = np.where(predictions == self.last_prediction, self.stable_steps + 1, 1)
        self.last_prediction = predictions
        # A sample whose classes are all tied (typically all-zero scores
        # before the first output spike arrives) has no prediction yet:
        # its arg-max is an artefact of tie-breaking, so it must not
        # accumulate stability credit or clear a margin threshold.
        undecided = scores.max(axis=1) == scores.min(axis=1)
        self.stable_steps[undecided] = 0

        retire = np.zeros(len(self.active_indices), dtype=bool)
        if cfg.adaptive and t >= cfg.min_timesteps:
            retire |= self.stable_steps >= cfg.stability_window
            if cfg.margin_threshold is not None:
                retire |= _softmax_margin(scores, t) >= cfg.margin_threshold
        if t == cfg.max_timesteps:
            retire[:] = True
        if not retire.any():
            return False

        retired_indices = self.active_indices[retire]
        self.final_scores[retired_indices] = scores[retire]
        self.exit_timesteps[retired_indices] = t
        self.total_spikes += self._active_spikes(retire)

        keep = ~retire
        if not keep.any():
            return True
        network.compact(keep)
        network.encoder.compact(keep)
        self.active_indices = self.active_indices[keep]
        self.last_prediction = self.last_prediction[keep]
        self.stable_steps = self.stable_steps[keep]
        return False

    def result(self) -> _EarlyExitResult:
        assert self.final_scores is not None  # max_timesteps >= 1 guarantees one step
        return _EarlyExitResult(
            scores=self.final_scores,
            exit_timesteps=self.exit_timesteps,
            total_spikes=self.total_spikes,
        )


class AdaptiveEngine:
    """Drives a spiking network timestep-by-timestep with per-sample early exit."""

    def __init__(self, network: SpikingNetwork, config: Optional[AdaptiveConfig] = None) -> None:
        self.network = network
        self.config = config if config is not None else AdaptiveConfig()
        # The server constructs a fresh engine per micro-batch over a shared,
        # long-lived network; re-applying an already-active backend or policy
        # spec would clear every layer's backend cache (transposed weight
        # copies, activity counters, scratch workspaces) on the hot path for
        # nothing.
        precision = self.config.precision
        if precision is not None and resolve_policy(precision) is not network.policy:
            network.set_policy(precision)
        backend = self.config.backend
        if backend is None:
            return
        if isinstance(backend, Backend):
            if all(layer.backend is backend for layer in network.layers):
                return
        elif network.backend_spec == backend.lower():
            return
        network.set_backend(backend)

    def infer(self, images: np.ndarray) -> InferenceOutcome:
        """Run the adaptive simulation over a batch of analog images.

        The timestep loop is the executor's (:mod:`repro.snn.executor`):
        the engine compiles an :class:`~repro.snn.ExecutionPlan` whose
        :class:`StepHook` carries the retirement logic and hands it to the
        configured scheduler.  Under ``"sharded"`` each batch shard runs the
        early-exit loop on its own network replica (compacting
        independently) and the per-shard payloads concatenate back in
        sample order.
        """

        cfg = self.config
        # Cast once at the boundary to the network's policy dtype (copy-free
        # when the caller already matches); everything downstream flows.
        images = self.network.policy.asarray(images)
        if images.ndim < 2:
            raise ValueError(f"expected a batched input, got shape {images.shape}")

        network = self.network
        scheduler = (
            network.scheduler if cfg.scheduler is None else resolve_scheduler(cfg.scheduler)
        )
        started = time.perf_counter()
        plan = ExecutionPlan.compile(
            network,
            cfg.max_timesteps,
            collect_statistics=False,
            hook_factory=lambda: _EarlyExitHook(cfg),
            record_final=False,
        )
        tracer = active_tracer()
        with tracer.span("engine:infer", category="serve") as span:
            if span.recording:
                span.annotate(
                    network=network.name,
                    batch=len(images),
                    max_timesteps=cfg.max_timesteps,
                    adaptive=cfg.adaptive,
                    scheduler=scheduler.name,
                    backend=network.backend_spec,
                    precision=network.policy_spec,
                )
            execution = scheduler.execute(plan, images)
            parts: List[_EarlyExitResult] = execution.hook_results
            outcome = InferenceOutcome(
                scores=np.concatenate([part.scores for part in parts], axis=0),
                exit_timesteps=np.concatenate([part.exit_timesteps for part in parts]),
                max_timesteps=cfg.max_timesteps,
                total_spikes=float(sum(part.total_spikes for part in parts)),
                wall_seconds=time.perf_counter() - started,
            )
            if span.recording:
                span.annotate(
                    mean_exit_timesteps=outcome.mean_timesteps,
                    spikes_per_inference=outcome.spikes_per_inference,
                )
        return outcome
