"""Stochastic gradient descent with momentum, the optimiser used by the paper.

Section 6 of the paper: "We trained ANNs by using the stochastic gradient
descent (SGD) algorithm" with an initial learning rate of 0.1 and step decays.
This implementation follows the standard (PyTorch-style) momentum update

    v ← μ v + (g + wd * p)
    p ← p - lr * v            (or Nesterov: p ← p - lr * (g + μ v))

and supports per-parameter-group hyperparameters so that, for example, the
TCL λ parameters can receive a different weight decay than the weights (λ
regularisation pulls clipping bounds down, trading latency for accuracy).
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from ..nn.module import Parameter
from .base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with momentum, weight decay and optional Nesterov acceleration."""

    def __init__(
        self,
        params: Union[Sequence[Parameter], Sequence[Dict]],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0.0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        defaults = {"lr": lr, "momentum": momentum, "weight_decay": weight_decay, "nesterov": nesterov}
        super().__init__(params, defaults)

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""

        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if weight_decay:
                    grad = grad + weight_decay * param.data
                if momentum:
                    state = self.state.setdefault(id(param), {})
                    velocity = state.get("velocity")
                    if velocity is None:
                        velocity = np.zeros_like(param.data)
                    velocity = momentum * velocity + grad
                    state["velocity"] = velocity
                    if nesterov:
                        grad = grad + momentum * velocity
                    else:
                        grad = velocity
                param.data -= lr * grad
