"""Adam optimiser.

The paper trains with SGD, but Adam converges faster on the small synthetic
datasets used by this reproduction's tests and examples, so it is provided as
an alternative (and is exercised by the ablation benchmarks to show the TCL
mechanism is optimiser-agnostic).
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from ..nn.module import Parameter
from .base import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with decoupled-style weight decay applied to the gradient."""

    def __init__(
        self,
        params: Union[Sequence[Parameter], Sequence[Dict]],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        defaults = {"lr": lr, "betas": betas, "eps": eps, "weight_decay": weight_decay}
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if weight_decay:
                    grad = grad + weight_decay * param.data
                state = self.state.setdefault(id(param), {})
                if not state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(param.data)
                    state["exp_avg_sq"] = np.zeros_like(param.data)
                state["step"] += 1
                step = state["step"]
                exp_avg = state["exp_avg"]
                exp_avg_sq = state["exp_avg_sq"]
                exp_avg *= beta1
                exp_avg += (1.0 - beta1) * grad
                exp_avg_sq *= beta2
                exp_avg_sq += (1.0 - beta2) * grad * grad
                bias_correction1 = 1.0 - beta1 ** step
                bias_correction2 = 1.0 - beta2 ** step
                denom = np.sqrt(exp_avg_sq / bias_correction2) + eps
                param.data -= lr * (exp_avg / bias_correction1) / denom
