"""Optimizer base class with parameter groups.

Parameter groups let the training harness give the clipping bounds λ a
dedicated learning rate / weight decay, which is how a practitioner tunes the
accuracy-latency trade-off the paper discusses (a small weight decay on λ
pushes clipping bounds down and therefore reduces SNN latency).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Union

from ..nn.module import Parameter

__all__ = ["Optimizer", "ParamGroup"]

ParamGroup = Dict[str, Any]


class Optimizer:
    """Base class shared by :class:`~repro.optim.SGD` and :class:`~repro.optim.Adam`."""

    def __init__(self, params: Union[Sequence[Parameter], Sequence[Dict]], defaults: Dict[str, Any]) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        self.defaults = dict(defaults)
        self.param_groups: List[ParamGroup] = []
        self.state: Dict[int, Dict[str, Any]] = {}

        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(dict(group))
        else:
            self.add_param_group({"params": params})

    def add_param_group(self, group: ParamGroup) -> None:
        """Add a parameter group, filling missing hyperparameters from defaults."""

        if "params" not in group:
            raise ValueError("param group must contain a 'params' entry")
        group_params = list(group["params"])
        for param in group_params:
            if not isinstance(param, Parameter):
                raise TypeError(f"optimizer can only handle Parameter objects, got {type(param).__name__}")
        merged = dict(self.defaults)
        merged.update(group)
        merged["params"] = group_params
        self.param_groups.append(merged)

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""

        for group in self.param_groups:
            for param in group["params"]:
                param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def learning_rate(self) -> float:
        """Learning rate of the first parameter group (for logging)."""

        return float(self.param_groups[0]["lr"])

    def set_learning_rate(self, lr: float) -> None:
        """Set the learning rate of every group (used by LR schedulers)."""

        for group in self.param_groups:
            group["lr"] = lr
