"""Gradient clipping utilities."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..nn.module import Parameter

__all__ = ["clip_grad_norm", "clip_grad_value"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm does not exceed ``max_norm``.

    Returns the norm before clipping, which the training harness logs to
    detect divergence early.
    """

    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total_sq = sum(float(np.sum(g * g)) for g in grads)
    total_norm = math.sqrt(total_sq)
    if total_norm > max_norm:
        scale = max_norm / (total_norm + 1e-12)
        for grad in grads:
            grad *= scale
    return total_norm


def clip_grad_value(parameters: Sequence[Parameter], clip_value: float) -> None:
    """Clamp every gradient element into ``[-clip_value, clip_value]``."""

    if clip_value <= 0:
        raise ValueError(f"clip_value must be positive, got {clip_value}")
    for param in parameters:
        if param.grad is not None:
            np.clip(param.grad, -clip_value, clip_value, out=param.grad)
