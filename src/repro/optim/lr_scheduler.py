"""Learning-rate schedules.

The paper decays the learning rate by 0.1 at epochs [100, 150] for CIFAR-10
and [30, 60, 90] for ImageNet — exactly what :class:`MultiStepLR` implements.
Step and cosine schedules are included for the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Sequence

from .base import Optimizer

__all__ = ["LRScheduler", "MultiStepLR", "StepLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base class: tracks the epoch counter and applies :meth:`get_lr`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.learning_rate
        self.last_epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""

        self.last_epoch += 1
        lr = self.get_lr()
        self.optimizer.set_learning_rate(lr)
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.learning_rate


class MultiStepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for milestone in self.milestones if self.last_epoch >= milestone)
        return self.base_lr * (self.gamma ** passed)


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_epoch // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))
