"""Optimisers and learning-rate schedules used to train the ANNs."""

from .base import Optimizer
from .sgd import SGD
from .adam import Adam
from .lr_scheduler import LRScheduler, MultiStepLR, StepLR, CosineAnnealingLR
from .clip import clip_grad_norm, clip_grad_value

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "MultiStepLR",
    "StepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
    "clip_grad_value",
]
