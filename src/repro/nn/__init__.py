"""Neural-network layer library built on :mod:`repro.autograd`.

Provides the module system (:class:`Module`, :class:`Parameter`), the layers
needed by the paper's models (convolution, linear, batch-norm, pooling, ReLU,
dropout), containers, residual blocks and weight initialisers.
"""

from .module import Module, Parameter
from .layers import Linear, Flatten, Dropout, Identity
from .conv import Conv2d
from .pooling import AvgPool2d, MaxPool2d, GlobalAvgPool2d
from .norm import BatchNorm2d, BatchNorm1d
from .activation import ReLU, Softmax
from .container import Sequential, ModuleList
from .residual import BasicBlock, make_activation
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Flatten",
    "Dropout",
    "Identity",
    "Conv2d",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "Softmax",
    "Sequential",
    "ModuleList",
    "BasicBlock",
    "make_activation",
    "init",
]
