"""Residual building blocks (He et al. 2016) in a conversion-friendly form.

Section 5 of the TCL paper distinguishes two residual-block flavours:

* **type-A** — identity shortcut: the block input is added directly to the
  output of the second convolution.  For conversion, the paper inserts a
  *virtual* 1×1 convolution with weight fixed to one on the shortcut so the
  block has the same structure as type-B.
* **type-B** — projection shortcut: a 1×1 convolution (``ConvSh``) matches the
  channel count / stride of the main path.

The blocks below follow the layer order the paper's Figure 3 shows:

    input ──(already activated: ReLU + clip, bound λ_pre)
      ├── Conv1 → [BN] → ReLU → clip(λ_c1) → Conv2 → [BN] ──┐
      └── shortcut (identity or ConvSh → [BN]) ─────────────┴─ add → ReLU → clip(λ_out)

The activation (ReLU followed by an optional clipping layer) is produced by a
caller-supplied ``activation_factory`` so that the same block class serves the
plain-ReLU baselines and the TCL-trained networks without this module having
to depend on :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..autograd import Tensor
from .activation import ReLU
from .conv import Conv2d
from .layers import Identity
from .module import Module
from .norm import BatchNorm2d

__all__ = ["BasicBlock", "make_activation"]

ActivationFactory = Callable[[], Module]


def make_activation() -> Module:
    """Default activation factory: a plain ReLU (no clipping layer)."""

    return ReLU()


class BasicBlock(Module):
    """A two-convolution residual block with optional projection shortcut.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; when they differ (or ``stride != 1``) a projection
        shortcut (type-B) is created, otherwise an identity shortcut (type-A).
    stride:
        Stride of the first convolution (and the projection shortcut).
    batch_norm:
        Whether to insert :class:`BatchNorm2d` after each convolution, as the
        paper's ResNets do during ANN training.
    activation_factory:
        Zero-argument callable returning the activation module to apply after
        the first convolution and after the residual addition.  The TCL models
        pass a factory producing ``ReLU → TrainableClip``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        batch_norm: bool = True,
        activation_factory: ActivationFactory = make_activation,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.batch_norm = batch_norm

        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=bias, rng=rng)
        self.bn1 = BatchNorm2d(out_channels) if batch_norm else Identity()
        self.activation1 = activation_factory()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=bias, rng=rng)
        self.bn2 = BatchNorm2d(out_channels) if batch_norm else Identity()

        self.is_projection = stride != 1 or in_channels != out_channels
        if self.is_projection:
            self.shortcut_conv = Conv2d(in_channels, out_channels, 1, stride=stride, padding=0, bias=bias, rng=rng)
            self.shortcut_bn = BatchNorm2d(out_channels) if batch_norm else Identity()
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

        self.activation_out = activation_factory()

    @property
    def block_type(self) -> str:
        """Return ``"B"`` for a projection shortcut, ``"A"`` for identity."""

        return "B" if self.is_projection else "A"

    def shortcut(self, inputs: Tensor) -> Tensor:
        """Apply the shortcut path (identity or projection)."""

        if not self.is_projection:
            return inputs
        out = self.shortcut_conv(inputs)
        return self.shortcut_bn(out)

    def forward(self, inputs: Tensor) -> Tensor:
        main = self.conv1(inputs)
        main = self.bn1(main)
        main = self.activation1(main)
        main = self.conv2(main)
        main = self.bn2(main)
        residual = self.shortcut(inputs)
        return self.activation_out(main + residual)

    def extra_repr(self) -> str:
        return (
            f"in_channels={self.in_channels}, out_channels={self.out_channels}, "
            f"stride={self.stride}, type={self.block_type}"
        )
