"""Fully connected, flattening and dropout layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd.functional import dropout as dropout_fn, linear as linear_fn
from .init import kaiming_normal, zeros_
from .module import Module, Parameter

__all__ = ["Linear", "Flatten", "Dropout", "Identity"]


class Linear(Module):
    """Affine layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionalities.
    bias:
        Whether to learn an additive bias.  The TCL conversion supports
        biases through the data-normalization of Eq. 5, so biases are enabled
        by default just as in the paper's models.
    rng:
        Optional generator for reproducible initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_normal((out_features, in_features), rng=rng), name="weight")
        self.bias = Parameter(zeros_((out_features,)), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        return linear_fn(inputs, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}, bias={self.bias is not None}"


class Flatten(Module):
    """Flatten all axes except the batch axis."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.flatten_batch()


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        return dropout_fn(inputs, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Identity(Module):
    """Pass-through layer, useful as a placeholder when rewriting networks."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs
