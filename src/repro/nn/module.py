"""Module and parameter abstractions, mirroring the familiar ``torch.nn`` API.

The ANN-to-SNN conversion walks a trained network layer by layer, reading
weights, biases, batch-norm statistics and the trained clipping bounds λ.  A
uniform module system with named parameters, buffers and submodules makes that
walk — and checkpointing, weight decay filtering, and parameter counting —
straightforward.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a :class:`Module`.

    Parameters always require gradients.  They are discovered automatically
    when assigned as attributes of a module.
    """

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True)
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.shape}, name={self.name!r})"


class Module:
    """Base class for every network component.

    Subclasses implement :meth:`forward`.  Assigning a :class:`Parameter`,
    another :class:`Module` or (via :meth:`register_buffer`) a numpy array to
    an attribute registers it so that it shows up in
    :meth:`named_parameters`, :meth:`state_dict` and friends.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute registration ------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. running statistics)."""

        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- forward ---------------------------------------------------------------

    def forward(self, *inputs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *inputs):
        return self.forward(*inputs)

    # -- traversal ---------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    # -- train / eval ------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Switch the module (and all submodules) to training mode."""

        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch the module (and all submodules) to inference mode."""

        return self.train(False)

    # -- gradients ------------------------------------------------------------------

    def zero_grad(self) -> None:
        """Clear the gradient buffers of every parameter."""

        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Return the total number of scalar parameters in the module."""

        total = 0
        for parameter in self.parameters():
            if trainable_only and not parameter.requires_grad:
                continue
            total += parameter.size
        return total

    # -- state dict ---------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → array mapping of parameters and buffers."""

        state: Dict[str, np.ndarray] = OrderedDict()
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""

        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = []
        for name, parameter in own_params.items():
            if name in state:
                if parameter.data.shape != state[name].shape:
                    raise ValueError(
                        f"shape mismatch for parameter {name!r}: "
                        f"module has {parameter.data.shape}, state has {state[name].shape}"
                    )
                parameter.data[...] = state[name]
            else:
                missing.append(name)
        for name, buffer in own_buffers.items():
            if name in state:
                np.asarray(buffer)[...] = state[name]
            elif strict:
                missing.append(name)
        unexpected = [k for k in state if k not in own_params and k not in own_buffers]
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")

    # -- representation ---------------------------------------------------------------------

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child_repr = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"
