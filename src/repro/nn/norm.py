"""Batch-normalisation layer modules.

Batch-norm (paper Eq. 6) is used while training the ANNs and removed before
the SNN conversion by folding its affine transform into the preceding layer's
weights and bias (paper Eq. 7).  The folding itself lives in
:mod:`repro.core.conversion`; these modules expose the learned ``gamma``,
``beta`` and running statistics it needs.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..autograd.norm import batch_norm1d, batch_norm2d
from ..runtime import resolve_dtype
from .module import Module, Parameter

__all__ = ["BatchNorm2d", "BatchNorm1d"]


class BatchNorm2d(Module):
    """Channelwise batch normalisation for NCHW activations."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        dtype = resolve_dtype()
        self.gamma = Parameter(np.ones(num_features, dtype=dtype), name="gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=dtype), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))

    def forward(self, inputs: Tensor) -> Tensor:
        return batch_norm2d(
            inputs,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, momentum={self.momentum}, eps={self.eps}"


class BatchNorm1d(Module):
    """Featurewise batch normalisation for ``(N, F)`` activations."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        dtype = resolve_dtype()
        self.gamma = Parameter(np.ones(num_features, dtype=dtype), name="gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=dtype), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))

    def forward(self, inputs: Tensor) -> Tensor:
        return batch_norm1d(
            inputs,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, momentum={self.momentum}, eps={self.eps}"
