"""Activation layer modules."""

from __future__ import annotations

from ..autograd import Tensor
from ..autograd.functional import softmax
from .module import Module

__all__ = ["ReLU", "Softmax"]


class ReLU(Module):
    """Rectified linear unit (paper Eq. 4).

    In the TCL scheme every ReLU in a convertible network is followed by a
    :class:`repro.core.tcl.TrainableClip` layer; the pair maps onto one IF
    spiking layer after conversion.
    """

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Softmax(Module):
    """Softmax over the trailing axis.

    The paper notes that soft-max is not representable in the spiking domain;
    converted networks therefore end at the last affine layer and classify by
    counting output spikes.  ``Softmax`` is provided only for ANN-side
    probability reporting.
    """

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, inputs: Tensor) -> Tensor:
        return softmax(inputs, axis=self.axis)
