"""Pooling layer modules.

The paper requires average pooling in convertible networks (Section 3.1):
an average pool is a fixed linear map and therefore directly realisable with
spiking synapses, while max pooling is not.  ``MaxPool2d`` is nonetheless
provided so that the "original" (non-convertible) ANN baselines of Figure 1
and Table 1 can be trained for comparison.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..autograd import Tensor
from ..autograd.pooling import avg_pool2d, global_avg_pool2d, max_pool2d
from .module import Module

__all__ = ["AvgPool2d", "MaxPool2d", "GlobalAvgPool2d"]

IntPair = Union[int, Tuple[int, int]]


class AvgPool2d(Module):
    """Average pooling — the SNN-compatible pooling used by convertible nets."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, inputs: Tensor) -> Tensor:
        return avg_pool2d(inputs, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class MaxPool2d(Module):
    """Max pooling — not convertible to SNN; used only by ANN-only baselines."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, inputs: Tensor) -> Tensor:
        return max_pool2d(inputs, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class GlobalAvgPool2d(Module):
    """Global average pooling used by the ResNet classifier heads."""

    def __init__(self, keepdims: bool = False) -> None:
        super().__init__()
        self.keepdims = keepdims

    def forward(self, inputs: Tensor) -> Tensor:
        pooled = global_avg_pool2d(inputs)
        if self.keepdims:
            return pooled
        return pooled.reshape(pooled.shape[0], pooled.shape[1])
