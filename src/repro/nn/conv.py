"""Convolutional layer module."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..autograd import Tensor
from ..autograd.conv import conv2d
from .init import kaiming_normal, zeros_
from .module import Module, Parameter

__all__ = ["Conv2d"]

IntPair = Union[int, Tuple[int, int]]


class Conv2d(Module):
    """2-D convolution over NCHW inputs with OIHW weights.

    The layer is convertible to a spiking synaptic layer: its weight and bias
    are exactly what Eq. 5 of the paper rescales during data-normalization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
        self.stride = stride
        self.padding = padding
        weight_shape = (out_channels, in_channels, *self.kernel_size)
        self.weight = Parameter(kaiming_normal(weight_shape, rng=rng), name="weight")
        self.bias = Parameter(zeros_((out_channels,)), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        return conv2d(inputs, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"in_channels={self.in_channels}, out_channels={self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}, "
            f"bias={self.bias is not None}"
        )
