"""Weight initialisation schemes.

The paper trains VGG and ResNet networks from scratch with SGD; the standard
Kaiming (He) initialisation for ReLU networks is used throughout, with Xavier
available for the linear classifier heads and unit tests.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros_",
    "ones_",
    "constant_",
    "compute_fans",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape.

    Linear weights have shape ``(out_features, in_features)``; convolutional
    weights have shape ``(out_channels, in_channels, kh, kw)``.
    """

    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He-normal initialisation (gain for ReLU nonlinearities)."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, _ = compute_fans(shape)
    std = math.sqrt(2.0 / fan_in)
    return generator.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He-uniform initialisation."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, _ = compute_fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return generator.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot-normal initialisation."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = compute_fans(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return generator.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot-uniform initialisation."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = compute_fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-bound, bound, size=shape)


def zeros_(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, batch-norm shift)."""

    return np.zeros(shape)


def ones_(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (batch-norm scale)."""

    return np.ones(shape)


def constant_(shape: Tuple[int, ...], value: float) -> np.ndarray:
    """Constant initialisation (used for the TCL λ initial value)."""

    return np.full(shape, float(value))
