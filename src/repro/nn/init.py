"""Weight initialisation schemes.

The paper trains VGG and ResNet networks from scratch with SGD; the standard
Kaiming (He) initialisation for ReLU networks is used throughout, with Xavier
available for the linear classifier heads and unit tests.

Every initialiser accepts an optional ``dtype`` and otherwise produces the
active compute policy's dtype (``float64`` under the stock ``train64``
profile).  Random draws always happen in double precision and are cast
afterwards, so a given seed yields the same values (up to rounding) under
every profile.

Note that the ``dtype`` override applies to the *raw array*: wrapping the
result in a :class:`~repro.nn.Parameter` / :class:`~repro.autograd.Tensor`
re-coerces it to the active policy's dtype (the tensor substrate keeps one
dtype per process by design), so per-parameter dtype mixing is not a thing
the module system supports — switch the active policy instead.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..runtime import resolve_dtype as _resolve_dtype

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros_",
    "ones_",
    "constant_",
    "compute_fans",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape.

    Linear weights have shape ``(out_features, in_features)``; convolutional
    weights have shape ``(out_channels, in_channels, kh, kw)``.
    """

    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    """He-normal initialisation (gain for ReLU nonlinearities)."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, _ = compute_fans(shape)
    std = math.sqrt(2.0 / fan_in)
    return generator.normal(0.0, std, size=shape).astype(_resolve_dtype(dtype), copy=False)


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    """He-uniform initialisation."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, _ = compute_fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return generator.uniform(-bound, bound, size=shape).astype(_resolve_dtype(dtype), copy=False)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    """Glorot-normal initialisation."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = compute_fans(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return generator.normal(0.0, std, size=shape).astype(_resolve_dtype(dtype), copy=False)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, dtype=None) -> np.ndarray:
    """Glorot-uniform initialisation."""

    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = compute_fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-bound, bound, size=shape).astype(_resolve_dtype(dtype), copy=False)


def zeros_(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    """All-zero initialisation (biases, batch-norm shift)."""

    return np.zeros(shape, dtype=_resolve_dtype(dtype))


def ones_(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    """All-one initialisation (batch-norm scale)."""

    return np.ones(shape, dtype=_resolve_dtype(dtype))


def constant_(shape: Tuple[int, ...], value: float, dtype=None) -> np.ndarray:
    """Constant initialisation (used for the TCL λ initial value)."""

    return np.full(shape, float(value), dtype=_resolve_dtype(dtype))
