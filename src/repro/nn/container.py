"""Container modules: ``Sequential`` and ``ModuleList``."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..autograd import Tensor
from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Run submodules in order, feeding each output into the next module.

    The convertible feed-forward networks (ConvNet-4, VGG) are expressed as
    ``Sequential`` chains, which the conversion pipeline walks to pair each
    synaptic layer (conv / linear) with its ReLU + clipping layer.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            self.add(module, name=str(index))

    def add(self, module: Module, name: str = None) -> "Sequential":
        """Append ``module``; returns ``self`` for chaining."""

        if name is None:
            name = str(len(self._ordered))
        setattr(self, name, module)
        self._ordered.append(module)
        return self

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self._ordered:
            output = module(output)
        return output

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]


class ModuleList(Module):
    """A list of submodules that registers its contents for traversal."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._ordered))
        setattr(self, name, module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *inputs):  # pragma: no cover - containers are not called directly
        raise RuntimeError("ModuleList is not callable; iterate over it instead")
