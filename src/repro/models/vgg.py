"""VGG family (Simonyan & Zisserman) in a conversion-friendly layout.

The paper trains VGG-16 on CIFAR-10 and on ImageNet.  This implementation
keeps the canonical stage structure (channel doubling between pooling stages)
but exposes two knobs that make CPU-scale reproduction possible:

* ``width_multiplier`` scales every channel count;
* pooling stages that would shrink the spatial size below 1 pixel for small
  synthetic images are skipped automatically (and reported via
  ``self.pool_stages``).

Max pooling is replaced by average pooling whenever ``convertible=True``
(the default), following Section 3.1 of the paper; ``convertible=False``
recovers the conventional max-pool VGG for the ANN-only baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.tcl import ClippedReLU, DEFAULT_LAMBDA_CIFAR
from ..nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Sequential,
)

__all__ = ["VGG", "VGG_CONFIGS", "vgg11", "vgg13", "vgg16", "vgg19"]

# "M" marks a pooling stage.  Numbers are output channels of a 3x3 convolution.
VGG_CONFIGS: Dict[str, List[Union[int, str]]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M", 512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


class VGG(Sequential):
    """Configurable VGG network with TCL activation sites.

    Parameters
    ----------
    config:
        Either the name of a standard configuration (``"vgg16"``) or an
        explicit list mixing channel counts and ``"M"`` pooling markers.
    num_classes, in_channels, image_size:
        Task geometry.
    width_multiplier:
        Scales every convolutional channel count (minimum 8 channels).
    classifier_width:
        Width of the hidden fully connected layer(s); the canonical 4096 is
        far too large for the synthetic tasks, so the default is 256.
    clip_enabled, initial_lambda:
        TCL configuration (see :class:`~repro.core.tcl.ClippedReLU`).
    batch_norm:
        Whether to train with batch normalisation.
    convertible:
        Use average pooling (True, conversion-compatible) or max pooling
        (False, the conventional VGG used as an ANN-only baseline).
    dropout:
        Dropout probability in the classifier head.
    """

    def __init__(
        self,
        config: Union[str, Sequence[Union[int, str]]] = "vgg16",
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_multiplier: float = 1.0,
        classifier_width: int = 256,
        clip_enabled: bool = True,
        initial_lambda: float = DEFAULT_LAMBDA_CIFAR,
        batch_norm: bool = True,
        convertible: bool = True,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if isinstance(config, str):
            if config not in VGG_CONFIGS:
                raise ValueError(f"unknown VGG config {config!r}; choose from {sorted(VGG_CONFIGS)}")
            plan = VGG_CONFIGS[config]
            self.config_name = config
        else:
            plan = list(config)
            self.config_name = "custom"

        self.clip_enabled = clip_enabled
        self.initial_lambda = initial_lambda
        self.num_classes = num_classes
        self.pool_stages = 0

        def activation() -> ClippedReLU:
            return ClippedReLU(initial_lambda=initial_lambda, clip_enabled=clip_enabled)

        def scaled(channels: int) -> int:
            return max(8, int(round(channels * width_multiplier)))

        size = image_size
        prev = in_channels
        for item in plan:
            if item == "M":
                if size < 2:
                    # The synthetic images are smaller than 224 px; skip pools
                    # that would collapse the feature map entirely.
                    continue
                self.add(AvgPool2d(2) if convertible else MaxPool2d(2))
                size //= 2
                self.pool_stages += 1
            else:
                out_channels = scaled(int(item))
                self.add(Conv2d(prev, out_channels, 3, padding=1, rng=rng))
                if batch_norm:
                    self.add(BatchNorm2d(out_channels))
                self.add(activation())
                prev = out_channels

        self.feature_channels = prev
        self.feature_size = size
        self.add(Flatten())
        if dropout > 0:
            self.add(Dropout(dropout, rng=rng))
        self.add(Linear(prev * size * size, classifier_width, rng=rng))
        self.add(activation())
        if dropout > 0:
            self.add(Dropout(dropout, rng=rng))
        self.add(Linear(classifier_width, num_classes, rng=rng))


def vgg11(**kwargs) -> VGG:
    """VGG-11 constructor."""

    return VGG(config="vgg11", **kwargs)


def vgg13(**kwargs) -> VGG:
    """VGG-13 constructor."""

    return VGG(config="vgg13", **kwargs)


def vgg16(**kwargs) -> VGG:
    """VGG-16 constructor (the paper's main feed-forward network)."""

    return VGG(config="vgg16", **kwargs)


def vgg19(**kwargs) -> VGG:
    """VGG-19 constructor."""

    return VGG(config="vgg19", **kwargs)
