"""The "4Conv, 2Linear" network of Table 1.

The paper's smallest CIFAR-10 model: four convolution layers followed by two
fully connected layers.  Every activation site is a
:class:`~repro.core.tcl.ClippedReLU`, so the same class serves both the TCL
variant (``clip_enabled=True``) and the plain-ReLU baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.tcl import ClippedReLU, DEFAULT_LAMBDA_CIFAR
from ..nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    Sequential,
)

__all__ = ["ConvNet4"]


class ConvNet4(Sequential):
    """Four convolutions + two linear layers ("4Conv, 2Linear" in Table 1).

    Parameters
    ----------
    num_classes:
        Number of output classes.
    in_channels:
        Input image channels.
    image_size:
        Input spatial resolution (square), needed to size the first linear
        layer.
    channels:
        Output channels of the four convolutions.
    hidden_features:
        Width of the penultimate fully connected layer.
    clip_enabled:
        Whether activation sites carry a trainable clipping bound (TCL).
    initial_lambda:
        Initial λ of every clipping layer (paper Section 6: 2.0 for CIFAR).
    batch_norm:
        Whether convolutions are followed by batch normalisation (folded away
        before conversion).
    dropout:
        Dropout probability applied before the classifier (0 disables it).
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 16,
        channels: Sequence[int] = (32, 32, 64, 64),
        hidden_features: int = 256,
        clip_enabled: bool = True,
        initial_lambda: float = DEFAULT_LAMBDA_CIFAR,
        batch_norm: bool = True,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(channels) != 4:
            raise ValueError(f"ConvNet4 needs exactly 4 channel counts, got {channels}")
        super().__init__()
        self.num_classes = num_classes
        self.clip_enabled = clip_enabled
        self.initial_lambda = initial_lambda

        def activation() -> ClippedReLU:
            return ClippedReLU(initial_lambda=initial_lambda, clip_enabled=clip_enabled)

        size = image_size
        prev = in_channels
        # Two conv stages, each: conv, conv, pool.
        for c1, c2 in ((channels[0], channels[1]), (channels[2], channels[3])):
            self.add(Conv2d(prev, c1, 3, padding=1, rng=rng))
            if batch_norm:
                self.add(BatchNorm2d(c1))
            self.add(activation())
            self.add(Conv2d(c1, c2, 3, padding=1, rng=rng))
            if batch_norm:
                self.add(BatchNorm2d(c2))
            self.add(activation())
            self.add(AvgPool2d(2))
            size //= 2
            prev = c2

        self.add(Flatten())
        if dropout > 0:
            self.add(Dropout(dropout, rng=rng))
        self.add(Linear(prev * size * size, hidden_features, rng=rng))
        self.add(activation())
        if dropout > 0:
            self.add(Dropout(dropout, rng=rng))
        self.add(Linear(hidden_features, num_classes, rng=rng))
