"""ResNet family (He et al. 2016) with TCL activation sites.

The paper evaluates RESNET-18 (CIFAR-10), RESNET-20 (baseline comparisons)
and RESNET-34 (ImageNet).  The residual blocks follow the layout of paper
Figure 3: every activation (after the first convolution of a block and after
the residual addition) is a ReLU followed by a trainable clipping layer, and
shortcuts are either identity (type-A) or a 1×1 projection convolution
(type-B).  Section 5's conversion rules consume exactly this structure.

The network is expressed as a flat :class:`~repro.nn.Sequential` —
stem convolution, a chain of :class:`~repro.nn.BasicBlock` modules, global
average pooling and the final linear classifier — so the generic converter in
:mod:`repro.core.conversion` can walk it without model-specific code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.tcl import ClippedReLU, DEFAULT_LAMBDA_CIFAR
from ..nn import BasicBlock, BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Sequential

__all__ = ["ResNet", "resnet18", "resnet20", "resnet34", "RESNET_CONFIGS"]

# (blocks per stage, channels per stage, first-stage stride)
RESNET_CONFIGS = {
    "resnet18": ([2, 2, 2, 2], [64, 128, 256, 512]),
    "resnet20": ([3, 3, 3], [16, 32, 64]),
    "resnet34": ([3, 4, 6, 3], [64, 128, 256, 512]),
}


class ResNet(Sequential):
    """Configurable ResNet built from :class:`~repro.nn.BasicBlock`.

    Parameters
    ----------
    stage_blocks:
        Number of residual blocks in each stage.
    stage_channels:
        Output channels of each stage (first stage keeps stride 1; later
        stages downsample by 2 through their first block's projection
        shortcut).
    num_classes, in_channels, image_size:
        Task geometry; ``image_size`` limits how many downsampling stages are
        applied so small synthetic images never collapse below 2×2.
    width_multiplier:
        Scales every channel count (minimum 8).
    clip_enabled, initial_lambda:
        TCL configuration.
    batch_norm:
        Whether blocks use batch normalisation during ANN training.
    """

    def __init__(
        self,
        stage_blocks: Sequence[int],
        stage_channels: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_multiplier: float = 1.0,
        clip_enabled: bool = True,
        initial_lambda: float = DEFAULT_LAMBDA_CIFAR,
        batch_norm: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(stage_blocks) != len(stage_channels):
            raise ValueError("stage_blocks and stage_channels must have the same length")
        super().__init__()
        self.clip_enabled = clip_enabled
        self.initial_lambda = initial_lambda
        self.num_classes = num_classes
        self.config = (list(stage_blocks), list(stage_channels))

        def activation() -> ClippedReLU:
            return ClippedReLU(initial_lambda=initial_lambda, clip_enabled=clip_enabled)

        def scaled(channels: int) -> int:
            return max(8, int(round(channels * width_multiplier)))

        size = image_size
        stem_channels = scaled(stage_channels[0])
        self.add(Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, rng=rng))
        if batch_norm:
            self.add(BatchNorm2d(stem_channels))
        self.add(activation())

        prev = stem_channels
        for stage_index, (blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
            out_channels = scaled(channels)
            for block_index in range(blocks):
                # The first block of every stage after the first downsamples,
                # unless the feature map is already too small.
                stride = 2 if (stage_index > 0 and block_index == 0 and size >= 4) else 1
                if stride == 2:
                    size //= 2
                self.add(
                    BasicBlock(
                        prev,
                        out_channels,
                        stride=stride,
                        batch_norm=batch_norm,
                        activation_factory=activation,
                        rng=rng,
                    )
                )
                prev = out_channels

        self.feature_channels = prev
        self.feature_size = size
        self.add(GlobalAvgPool2d())
        self.add(Linear(prev, num_classes, rng=rng))

    @property
    def residual_blocks(self) -> List[BasicBlock]:
        """All residual blocks of the network, in forward order."""

        return [module for module in self if isinstance(module, BasicBlock)]


def resnet18(**kwargs) -> ResNet:
    """ResNet-18 constructor (the paper's CIFAR-10 residual network)."""

    blocks, channels = RESNET_CONFIGS["resnet18"]
    return ResNet(blocks, channels, **kwargs)


def resnet20(**kwargs) -> ResNet:
    """ResNet-20 constructor (CIFAR-style, used by the baseline comparisons)."""

    blocks, channels = RESNET_CONFIGS["resnet20"]
    return ResNet(blocks, channels, **kwargs)


def resnet34(**kwargs) -> ResNet:
    """ResNet-34 constructor (the paper's ImageNet residual network)."""

    blocks, channels = RESNET_CONFIGS["resnet34"]
    return ResNet(blocks, channels, **kwargs)
