"""Model registry: build any of the paper's architectures by name.

The benchmark harness and the examples request models by the names used in
Table 1 ("4Conv, 2Linear", VGG-16, RESNET-18, RESNET-34); this registry maps
those names (and convenient aliases) to constructors with reproducible
defaults.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..nn import Module
from .convnet import ConvNet4
from .resnet import resnet18, resnet20, resnet34
from .vgg import vgg11, vgg13, vgg16, vgg19

__all__ = ["MODEL_REGISTRY", "build_model", "available_models"]

MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "convnet4": ConvNet4,
    "4conv2linear": ConvNet4,
    "vgg11": vgg11,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet18": resnet18,
    "resnet20": resnet20,
    "resnet34": resnet34,
}


def available_models() -> List[str]:
    """Sorted list of registered model names."""

    return sorted(MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Module:
    """Construct a model by (case-insensitive) registry name.

    Raises
    ------
    KeyError
        If the name is not registered.
    """

    key = name.lower().replace("-", "").replace("_", "").replace(" ", "")
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_REGISTRY[key](**kwargs)
