"""Model zoo: the architectures evaluated in the paper's Table 1."""

from .convnet import ConvNet4
from .vgg import VGG, VGG_CONFIGS, vgg11, vgg13, vgg16, vgg19
from .resnet import ResNet, RESNET_CONFIGS, resnet18, resnet20, resnet34
from .registry import MODEL_REGISTRY, build_model, available_models

__all__ = [
    "ConvNet4",
    "VGG",
    "VGG_CONFIGS",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "ResNet",
    "RESNET_CONFIGS",
    "resnet18",
    "resnet20",
    "resnet34",
    "MODEL_REGISTRY",
    "build_model",
    "available_models",
]
