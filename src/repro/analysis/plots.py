"""ASCII plots: activation histograms (Figure 1) and accuracy-latency curves.

The original paper shows Figure 1 as a log-scale histogram of one layer's
activations annotated with the 99.9 % percentile and the trained λ.  Without a
graphics backend the same information is rendered as a fixed-width ASCII bar
chart, which the Figure-1 benchmark prints and stores in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.evaluation import ActivationSiteReport

__all__ = ["ascii_histogram", "ascii_curve", "render_activation_report"]


def ascii_histogram(
    counts: np.ndarray,
    edges: np.ndarray,
    width: int = 50,
    log_scale: bool = True,
    markers: Optional[Dict[str, float]] = None,
) -> str:
    """Render a histogram as horizontal ASCII bars.

    Parameters
    ----------
    counts, edges:
        Output of ``numpy.histogram``.
    width:
        Maximum bar width in characters.
    log_scale:
        Plot ``log10(1 + count)`` (the paper's Figure 1 is log-scale).
    markers:
        Optional ``{label: value}`` annotations; a marker is printed on the
        bin containing its value.
    """

    counts = np.asarray(counts, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    values = np.log10(1.0 + counts) if log_scale else counts
    peak = values.max() if values.size and values.max() > 0 else 1.0
    markers = markers or {}

    lines = []
    for index, value in enumerate(values):
        lo, hi = edges[index], edges[index + 1]
        bar = "#" * int(round(width * value / peak))
        annotations = [label for label, mark in markers.items() if lo <= mark < hi]
        suffix = ("   <-- " + ", ".join(annotations)) if annotations else ""
        lines.append(f"[{lo:8.3f}, {hi:8.3f}) {bar}{suffix}")
    return "\n".join(lines)


def ascii_curve(points: Dict[int, float], width: int = 50, label: str = "accuracy") -> str:
    """Render ``{x: y}`` points as a simple horizontal bar chart keyed by x."""

    if not points:
        return "(no data)"
    peak = max(points.values()) or 1.0
    lines = [f"{label} vs latency"]
    for x in sorted(points):
        y = points[x]
        bar = "#" * int(round(width * y / peak)) if peak > 0 else ""
        lines.append(f"T={x:>5d} | {bar} {y:.4f}")
    return "\n".join(lines)


def render_activation_report(report: ActivationSiteReport, width: int = 50) -> str:
    """Figure-1 style rendering of one activation site."""

    markers = {"max": report.maximum, "p99.9": report.p999}
    if report.trained_lambda is not None:
        markers["trained λ"] = report.trained_lambda
    header = (
        f"site {report.site_name}: max={report.maximum:.3f} p99.9={report.p999:.3f} "
        + (f"λ={report.trained_lambda:.3f}" if report.trained_lambda is not None else "(no clip)")
    )
    histogram = ascii_histogram(report.histogram_counts, report.histogram_edges, width=width, markers=markers)
    return header + "\n" + histogram
