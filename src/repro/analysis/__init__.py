"""Analysis and reporting: ASCII tables / plots and the experiment registry."""

from .tables import render_table, render_table1, render_published_comparison, format_percent
from .plots import ascii_histogram, ascii_curve, render_activation_report
from .registry import ExperimentSpec, EXPERIMENTS, experiment_ids, get_experiment
from .report import experiment_section, write_report_section

__all__ = [
    "render_table",
    "render_table1",
    "render_published_comparison",
    "format_percent",
    "ascii_histogram",
    "ascii_curve",
    "render_activation_report",
    "ExperimentSpec",
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "experiment_section",
    "write_report_section",
]
