"""Experiment registry: one entry per table / figure of the paper.

Maps each experiment id to a short description, the paper artefact it
reproduces and the benchmark module that regenerates it, so DESIGN.md,
EXPERIMENTS.md and the benchmark harness stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ExperimentSpec", "EXPERIMENTS", "experiment_ids", "get_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one reproducible experiment."""

    experiment_id: str
    paper_artifact: str
    description: str
    benchmark: str
    modules: tuple


EXPERIMENTS: List[ExperimentSpec] = [
    ExperimentSpec(
        "fig1-activation-distribution",
        "Figure 1",
        "Activation distribution of an early VGG layer with max / 99.9% / trained-λ markers",
        "benchmarks/test_fig1_activation_distribution.py",
        ("repro.core.evaluation", "repro.analysis.plots"),
    ),
    ExperimentSpec(
        "fig2-tcl-layer",
        "Figure 2",
        "Clipping-layer forward/backward behaviour (Eq. 8/9) and its training effect",
        "benchmarks/test_fig2_tcl_layer.py",
        ("repro.core.tcl",),
    ),
    ExperimentSpec(
        "fig3-residual-conversion",
        "Figure 3",
        "Residual-block conversion: spiking NS/OS rates match the ANN block activations",
        "benchmarks/test_fig3_residual_block.py",
        ("repro.core.residual", "repro.snn.layers"),
    ),
    ExperimentSpec(
        "table1-cifar",
        "Table 1 (CIFAR-10 rows)",
        "ANN vs SNN accuracy at T in {50,100,150,200} for ConvNet4 / VGG / ResNet with TCL and baselines",
        "benchmarks/test_table1_cifar.py",
        ("repro.core.pipeline", "repro.analysis.tables"),
    ),
    ExperimentSpec(
        "table1-imagenet",
        "Table 1 (ImageNet rows)",
        "ANN vs SNN accuracy at T in {150,200,250} on the ImageNet-like substitute",
        "benchmarks/test_table1_imagenet.py",
        ("repro.core.pipeline", "repro.analysis.tables"),
    ),
    ExperimentSpec(
        "ablation-lambda-init",
        "Section 6 setup",
        "Sweep of the initial λ (paper uses 2.0 CIFAR / 4.0 ImageNet)",
        "benchmarks/test_ablation_lambda_init.py",
        ("repro.core.tcl", "repro.core.pipeline"),
    ),
    ExperimentSpec(
        "ablation-reset-mode",
        "Section 2 claim",
        "Reset-by-subtraction vs reset-to-zero accuracy at matched latency",
        "benchmarks/test_ablation_reset_mode.py",
        ("repro.snn.neuron",),
    ),
    ExperimentSpec(
        "ablation-norm-strategy",
        "Section 3.2 discussion",
        "Conversion loss and latency-to-ANN-accuracy of max / percentile / TCL norm-factors",
        "benchmarks/test_ablation_norm_strategy.py",
        ("repro.core.normfactor", "repro.core.evaluation"),
    ),
]


def experiment_ids() -> List[str]:
    """All registered experiment ids."""

    return [spec.experiment_id for spec in EXPERIMENTS]


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment spec by id."""

    for spec in EXPERIMENTS:
        if spec.experiment_id == experiment_id:
            return spec
    raise KeyError(f"unknown experiment {experiment_id!r}; known ids: {experiment_ids()}")
