"""Report assembly: turn experiment results into markdown sections.

The benchmark harness uses these helpers to append paper-vs-measured sections
to ``EXPERIMENTS.md`` so the reproduction record is regenerated together with
the numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..core.baselines import published_results_for
from ..core.pipeline import ExperimentResult
from .registry import get_experiment
from .tables import render_published_comparison, render_table1

__all__ = ["experiment_section", "write_report_section"]


def experiment_section(
    experiment_id: str,
    result: Optional[ExperimentResult] = None,
    extra_lines: Optional[Sequence[str]] = None,
) -> str:
    """Build one markdown section for ``experiment_id``."""

    spec = get_experiment(experiment_id)
    lines: List[str] = [f"## {spec.experiment_id} — {spec.paper_artifact}", "", spec.description, ""]
    if result is not None:
        lines.append("```")
        lines.append(render_table1(result))
        lines.append("```")
        dataset = result.config.dataset
        published = published_results_for("imagenet" if dataset.lower().startswith("imagenet") else "cifar10")
        if published:
            lines.append("")
            lines.append("```")
            lines.append(render_published_comparison(published))
            lines.append("```")
    if extra_lines:
        lines.append("")
        lines.extend(extra_lines)
    lines.append("")
    return "\n".join(lines)


def write_report_section(path: Union[str, Path], section: str, append: bool = True) -> Path:
    """Write (or append) a markdown section to ``path``."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append and path.exists() else "w"
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(section)
        if not section.endswith("\n"):
            handle.write("\n")
    return path
