"""ASCII rendering of the paper's result tables.

There is no plotting backend available offline, so the benchmark harness
reports everything as plain-text tables (and the ASCII plots of
:mod:`repro.analysis.plots`).  ``render_table`` is a generic fixed-width table
formatter; ``render_table1`` lays out an
:class:`~repro.core.pipeline.ExperimentResult` in the shape of the paper's
Table 1 (rows = conversion strategy, columns = ANN accuracy and the SNN
accuracy at each latency checkpoint).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.baselines import PublishedResult
from ..core.pipeline import ExperimentResult

__all__ = ["render_table", "render_table1", "render_published_comparison", "format_percent"]


def format_percent(value: Optional[float]) -> str:
    """Format a fraction as a percentage string, or ``-`` when missing."""

    if value is None:
        return "-"
    return f"{100.0 * value:.2f}%"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: Optional[str] = None) -> str:
    """Render a fixed-width table with a header rule."""

    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_table1(result: ExperimentResult, title: Optional[str] = None) -> str:
    """Render an experiment result in the layout of the paper's Table 1."""

    latencies = sorted({t for outcome in result.outcomes for t in outcome.accuracy_by_latency})
    headers = ["strategy", "ANN"] + [f"T={t}" for t in latencies]
    rows: List[List[str]] = []
    for outcome in result.outcomes:
        # Each row reports the accuracy of the ANN that was actually converted:
        # the TCL-trained network for the TCL row, the plain-ReLU twin otherwise.
        ann_reference = outcome.sweep.ann_accuracy if outcome.sweep.ann_accuracy is not None else result.ann_accuracy
        row = [outcome.strategy_name, format_percent(ann_reference)]
        for latency in latencies:
            row.append(format_percent(outcome.accuracy_by_latency.get(latency)))
        rows.append(row)
    if result.original_ann_accuracy is not None:
        rows.append(["original ANN (no clip)", format_percent(result.original_ann_accuracy)] + ["-"] * len(latencies))
    caption = title or f"{result.config.model} on {result.config.dataset} (synthetic substitute)"
    return render_table(headers, rows, title=caption)


def render_published_comparison(published: Sequence[PublishedResult], title: Optional[str] = None) -> str:
    """Render the literature rows of Table 1 (accuracies in paper percent)."""

    headers = ["source", "network", "ANN", "SNN", "latency"]
    rows = []
    for entry in published:
        latency = "T>300" if entry.latency is None else f"T={entry.latency}"
        rows.append([entry.source, entry.network, f"{entry.ann_accuracy:.2f}%", f"{entry.snn_accuracy:.2f}%", latency])
    return render_table(headers, rows, title=title or "Published Table 1 rows (for shape comparison)")
