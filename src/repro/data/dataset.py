"""Dataset abstractions.

The original paper uses CIFAR-10 and ImageNet.  Neither can be downloaded in
this environment, so the :mod:`repro.data.synthetic` module generates
class-structured image datasets with the statistical properties the paper's
argument relies on (learnable class structure, wide-tailed ReLU activation
distributions).  The abstractions here are dataset-agnostic: a
:class:`Dataset` is an indexable collection of ``(image, label)`` pairs and
:class:`ArrayDataset` wraps in-memory numpy arrays.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..runtime import active_policy

__all__ = ["Dataset", "ArrayDataset", "Subset", "train_test_split"]


class Dataset:
    """Minimal dataset interface: ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def num_classes(self) -> int:
        """Number of distinct labels; subclasses should override when known."""

        labels = {int(self[i][1]) for i in range(len(self))}
        return len(labels)


class ArrayDataset(Dataset):
    """In-memory dataset over ``images`` (N, C, H, W) and integer ``labels`` (N,).

    Parameters
    ----------
    images, labels:
        Numpy arrays with matching leading dimension.
    transform:
        Optional callable applied to each image on access (e.g. augmentation).
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        images = active_policy().asarray(images)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) length mismatch")
        if images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {images.shape}")
        self.images = images
        self.labels = labels
        self.transform = transform

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image)
        return image, int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Return the ``(C, H, W)`` shape of a single image."""

        return tuple(self.images.shape[1:])


class Subset(Dataset):
    """A view of another dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.dataset[self.indices[index]]

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> Tuple[Subset, Subset]:
    """Shuffle and split a dataset into train / test subsets."""

    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(dataset))
    split = int(round(len(dataset) * (1.0 - test_fraction)))
    return Subset(dataset, indices[:split]), Subset(dataset, indices[split:])
