"""Synthetic replacements for CIFAR-10 and ImageNet.

The evaluation in the TCL paper depends on three properties of the data, not
on the pixels themselves:

1. the classification task is learnable by a convolutional network so that the
   "ANN accuracy" column of Table 1 is meaningful;
2. ReLU activation distributions inside the trained network are wide and
   heavy-tailed (the paper's Figure 1), so that max-norm, 99.9 %-percentile
   norm and TCL-trained λ yield visibly different norm-factors and therefore
   visibly different accuracy-latency curves;
3. ImageNet-like data is "harder" than CIFAR-like data (more classes, more
   intra-class variation) so the gap between conversion strategies widens,
   which is the paper's headline claim.

The generators below synthesise datasets with exactly these properties:

* every class has a smooth random spatial *prototype* (a mixture of Gaussian
  bumps across channels);
* each sample perturbs its class prototype with per-sample global contrast and
  brightness jitter drawn from a log-normal distribution — this produces the
  heavy upper tail of activations that makes the max-norm strategy slow;
* additive pixel noise, random spatial shifts and occasional "outlier" samples
  (brightness × several σ) complete the picture.

``SyntheticCIFAR`` mimics CIFAR-10 (3×32×32, 10 classes by default) and
``SyntheticImageNet`` mimics an ImageNet subset (3×32..64 px, 100+ classes by
default); both accept reduced resolutions / class counts so tests stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .dataset import ArrayDataset

__all__ = [
    "SyntheticImageConfig",
    "make_class_prototypes",
    "generate_synthetic_images",
    "SyntheticCIFAR",
    "SyntheticImageNet",
    "make_cifar_like",
    "make_imagenet_like",
]


@dataclass
class SyntheticImageConfig:
    """Configuration of the synthetic image generator.

    Attributes
    ----------
    num_classes:
        Number of distinct labels.
    image_size:
        Spatial resolution (square images).
    channels:
        Number of channels (3 for the RGB-like defaults).
    samples_per_class:
        Number of generated images per class.
    prototype_bumps:
        Number of Gaussian bumps composing each class prototype; more bumps
        give richer (harder) classes.
    noise_std:
        Standard deviation of additive pixel noise.
    contrast_sigma:
        Sigma of the log-normal per-sample contrast jitter.  Larger values
        produce heavier-tailed activation distributions (the Figure-1 regime).
    shift_pixels:
        Maximum random spatial shift applied to the prototype.
    outlier_fraction:
        Fraction of samples whose contrast is multiplied by ``outlier_scale``;
        these are the rare bright samples that dominate max-norm factors.
    outlier_scale:
        Contrast multiplier of outlier samples.
    seed:
        Seed of the dataset-level random generator.
    """

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    samples_per_class: int = 64
    prototype_bumps: int = 4
    noise_std: float = 0.15
    contrast_sigma: float = 0.35
    shift_pixels: int = 2
    outlier_fraction: float = 0.02
    outlier_scale: float = 3.0
    seed: int = 0


def make_class_prototypes(config: SyntheticImageConfig, rng: np.random.Generator) -> np.ndarray:
    """Build one smooth spatial prototype per class.

    Returns an array of shape ``(num_classes, channels, H, W)`` whose values
    are non-negative and roughly unit scale.
    """

    size = config.image_size
    ys, xs = np.mgrid[0:size, 0:size]
    # reprolint: allow[dtype] -- synthetic data is generated at full precision; loaders cast to the active policy
    prototypes = np.zeros((config.num_classes, config.channels, size, size), dtype=np.float64)
    for cls in range(config.num_classes):
        for channel in range(config.channels):
            # reprolint: allow[dtype] -- full-precision accumulator for the Gaussian bumps
            image = np.zeros((size, size), dtype=np.float64)
            for _ in range(config.prototype_bumps):
                cy, cx = rng.uniform(0, size, size=2)
                sigma = rng.uniform(size / 8.0, size / 3.0)
                amplitude = rng.uniform(0.4, 1.2)
                image += amplitude * np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * sigma ** 2))
            prototypes[cls, channel] = image
    # Normalise prototypes to roughly unit max so classes are comparable.
    max_per_class = prototypes.reshape(config.num_classes, -1).max(axis=1)
    prototypes /= max_per_class[:, None, None, None]
    return prototypes


def _random_shift(image: np.ndarray, shift_y: int, shift_x: int) -> np.ndarray:
    """Shift an image by whole pixels, zero-filling the revealed border."""

    if shift_y == 0 and shift_x == 0:
        return image
    shifted = np.zeros_like(image)
    c, h, w = image.shape
    src_y = slice(max(0, -shift_y), min(h, h - shift_y))
    dst_y = slice(max(0, shift_y), min(h, h + shift_y))
    src_x = slice(max(0, -shift_x), min(w, w - shift_x))
    dst_x = slice(max(0, shift_x), min(w, w + shift_x))
    shifted[:, dst_y, dst_x] = image[:, src_y, src_x]
    return shifted


def generate_synthetic_images(config: SyntheticImageConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, labels)`` arrays according to ``config``."""

    rng = np.random.default_rng(config.seed)
    prototypes = make_class_prototypes(config, rng)
    total = config.num_classes * config.samples_per_class
    # reprolint: allow[dtype] -- synthetic data is generated at full precision; loaders cast to the active policy
    images = np.zeros((total, config.channels, config.image_size, config.image_size), dtype=np.float64)
    labels = np.zeros(total, dtype=np.int64)

    index = 0
    for cls in range(config.num_classes):
        for _ in range(config.samples_per_class):
            contrast = rng.lognormal(mean=0.0, sigma=config.contrast_sigma)
            if rng.random() < config.outlier_fraction:
                contrast *= config.outlier_scale
            brightness = rng.normal(0.0, 0.1)
            shift_y = rng.integers(-config.shift_pixels, config.shift_pixels + 1)
            shift_x = rng.integers(-config.shift_pixels, config.shift_pixels + 1)
            base = _random_shift(prototypes[cls], int(shift_y), int(shift_x))
            noise = rng.normal(0.0, config.noise_std, size=base.shape)
            images[index] = contrast * base + brightness + noise
            labels[index] = cls
            index += 1

    # Shuffle so that batches are class-balanced on average.
    order = rng.permutation(total)
    return images[order], labels[order]


class SyntheticCIFAR(ArrayDataset):
    """CIFAR-10 stand-in: 10 classes of small RGB-like images.

    Defaults are scaled down (16×16, 64 samples/class) so that CPU training in
    the benchmarks finishes in seconds; pass ``image_size=32`` and larger
    ``samples_per_class`` for a closer match to the real dataset's geometry.
    """

    def __init__(
        self,
        num_classes: int = 10,
        image_size: int = 16,
        samples_per_class: int = 64,
        seed: int = 0,
        **overrides,
    ) -> None:
        config = SyntheticImageConfig(
            num_classes=num_classes,
            image_size=image_size,
            samples_per_class=samples_per_class,
            seed=seed,
            **overrides,
        )
        images, labels = generate_synthetic_images(config)
        super().__init__(images, labels)
        self.config = config


class SyntheticImageNet(ArrayDataset):
    """ImageNet-subset stand-in: more classes, richer prototypes, heavier tails.

    The defaults (20 classes, 24×24) keep CPU benchmarks tractable while
    preserving the property the paper relies on: relative to the CIFAR-like
    dataset, activation distributions are wider, so baseline norm strategies
    lose more accuracy at a fixed latency.
    """

    def __init__(
        self,
        num_classes: int = 20,
        image_size: int = 24,
        samples_per_class: int = 32,
        seed: int = 1,
        **overrides,
    ) -> None:
        defaults = {
            "prototype_bumps": 6,
            "contrast_sigma": 0.5,
            "outlier_fraction": 0.04,
            "outlier_scale": 4.0,
            "noise_std": 0.2,
        }
        defaults.update(overrides)
        config = SyntheticImageConfig(
            num_classes=num_classes,
            image_size=image_size,
            samples_per_class=samples_per_class,
            seed=seed,
            **defaults,
        )
        images, labels = generate_synthetic_images(config)
        super().__init__(images, labels)
        self.config = config


def make_cifar_like(train_per_class: int = 48, test_per_class: int = 16, **kwargs) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return matched train / test SyntheticCIFAR splits drawn from one generator."""

    total = train_per_class + test_per_class
    dataset = SyntheticCIFAR(samples_per_class=total, **kwargs)
    return _split_by_count(dataset, train_per_class, test_per_class)


def make_imagenet_like(train_per_class: int = 24, test_per_class: int = 8, **kwargs) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return matched train / test SyntheticImageNet splits drawn from one generator."""

    total = train_per_class + test_per_class
    dataset = SyntheticImageNet(samples_per_class=total, **kwargs)
    return _split_by_count(dataset, train_per_class, test_per_class)


def _split_by_count(dataset: ArrayDataset, train_per_class: int, test_per_class: int) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split an ArrayDataset into class-balanced train / test ArrayDatasets."""

    images, labels = dataset.images, dataset.labels
    train_idx, test_idx = [], []
    for cls in np.unique(labels):
        cls_idx = np.where(labels == cls)[0]
        train_idx.extend(cls_idx[:train_per_class])
        test_idx.extend(cls_idx[train_per_class: train_per_class + test_per_class])
    train_idx = np.array(train_idx)
    test_idx = np.array(test_idx)
    train = ArrayDataset(images[train_idx], labels[train_idx])
    test = ArrayDataset(images[test_idx], labels[test_idx])
    return train, test
