"""Image transforms (normalisation and light augmentation).

The paper trains with standard CIFAR/ImageNet augmentation; for the synthetic
stand-ins a light pipeline (normalise, random horizontal flip, random crop
with padding) is sufficient and keeps CPU epochs fast.
Transforms operate on single CHW numpy images and compose with
:class:`Compose`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..runtime import resolve_dtype

__all__ = ["Compose", "Normalize", "RandomHorizontalFlip", "RandomCrop", "ToFloat", "compute_mean_std"]


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image


class ToFloat:
    """Cast to the active compute policy's float dtype (``dtype`` overrides)."""

    def __init__(self, dtype=None) -> None:
        self.dtype = np.dtype(dtype) if dtype is not None else None

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return np.asarray(image, dtype=resolve_dtype(self.dtype))


class Normalize:
    """Channelwise standardisation ``(x - mean) / std``.

    The statistics are kept at full precision and cast at *call* time to
    ``dtype`` — or, like :class:`ToFloat`, to the active compute policy's
    dtype when no override is given — so a pipeline built under one policy
    does not silently upcast images under another.
    """

    def __init__(self, mean: Sequence[float], std: Sequence[float], dtype=None) -> None:
        self.dtype = np.dtype(dtype) if dtype is not None else None
        # reprolint: allow[dtype] -- statistics are kept at full precision by design; __call__ casts to the active policy
        self.mean = np.asarray(mean, dtype=np.float64).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float64).reshape(-1, 1, 1)  # reprolint: allow[dtype] -- same as mean above
        if np.any(self.std <= 0):
            raise ValueError("std values must be positive")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        dtype = resolve_dtype(self.dtype)
        mean = self.mean.astype(dtype, copy=False)
        std = self.std.astype(dtype, copy=False)
        return (np.asarray(image, dtype=dtype) - mean) / std


class RandomHorizontalFlip:
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None) -> None:
        self.p = p
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class RandomCrop:
    """Pad by ``padding`` pixels then crop back to the original size at a random offset."""

    def __init__(self, padding: int = 2, seed: Optional[int] = None) -> None:
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = padding
        self._rng = np.random.default_rng(seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return image
        c, h, w = image.shape
        padded = np.pad(image, ((0, 0), (self.padding, self.padding), (self.padding, self.padding)))
        top = self._rng.integers(0, 2 * self.padding + 1)
        left = self._rng.integers(0, 2 * self.padding + 1)
        return padded[:, top: top + h, left: left + w]


def compute_mean_std(images: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compute channelwise mean and std of an NCHW image array."""

    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3))
    std = np.where(std < 1e-8, 1.0, std)
    return mean, std
