"""Mini-batch loading."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .dataset import Dataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a dataset in mini-batches of stacked numpy arrays.

    Parameters
    ----------
    dataset:
        The dataset to draw from.
    batch_size:
        Number of samples per batch.
    shuffle:
        Whether to reshuffle indices at the start of every epoch.
    drop_last:
        Whether to drop a trailing incomplete batch.
    seed:
        Seed of the shuffling generator (each epoch advances it) so runs are
        reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start: start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            images, labels = [], []
            for i in batch_idx:
                image, label = self.dataset[int(i)]
                images.append(image)
                labels.append(label)
            yield np.stack(images), np.asarray(labels, dtype=np.int64)

    def full_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the entire dataset as one batch (used for evaluation)."""

        images, labels = [], []
        for i in range(len(self.dataset)):
            image, label = self.dataset[i]
            images.append(image)
            labels.append(label)
        return np.stack(images), np.asarray(labels, dtype=np.int64)
