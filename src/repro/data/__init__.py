"""Data substrate: datasets, synthetic CIFAR/ImageNet stand-ins, loaders, transforms."""

from .dataset import Dataset, ArrayDataset, Subset, train_test_split
from .synthetic import (
    SyntheticImageConfig,
    SyntheticCIFAR,
    SyntheticImageNet,
    make_cifar_like,
    make_imagenet_like,
    generate_synthetic_images,
    make_class_prototypes,
)
from .loader import DataLoader
from .transforms import Compose, Normalize, RandomHorizontalFlip, RandomCrop, ToFloat, compute_mean_std

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "train_test_split",
    "SyntheticImageConfig",
    "SyntheticCIFAR",
    "SyntheticImageNet",
    "make_cifar_like",
    "make_imagenet_like",
    "generate_synthetic_images",
    "make_class_prototypes",
    "DataLoader",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "ToFloat",
    "compute_mean_std",
]
