#!/usr/bin/env python3
"""Execute the fenced Python examples in ``docs/*.md`` so the docs can't rot.

Every fenced code block whose info string is exactly ``python`` is treated as
a runnable example: it is written to a scratch directory and executed in a
fresh interpreter with ``src/`` on ``PYTHONPATH``.  Blocks that are
illustrative rather than runnable should use a different info string
(``text``, ``pycon``, …) or start with the marker comment
``# illustrative``.

Run directly (the CI docs job does)::

    python tools/check_docs.py [--docs-dir docs] [--verbose]

or through the pytest wrapper ``tests/test_docs.py``, which runs one test
per snippet.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_MARKER = "# illustrative"
FENCE_PATTERN = re.compile(r"^```python[ \t]*$(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)

#: Generous per-snippet budget: examples are written to run in seconds.
SNIPPET_TIMEOUT_SECONDS = 240


@dataclass
class Snippet:
    """One runnable example extracted from a markdown file."""

    source: Path
    index: int
    code: str

    @property
    def label(self) -> str:
        return f"{self.source.name}[{self.index}]"


def extract_snippets(docs_dir: Path) -> List[Snippet]:
    """All runnable ``python`` fences from every ``*.md`` under ``docs_dir``."""

    snippets: List[Snippet] = []
    for path in sorted(docs_dir.glob("*.md")):
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(FENCE_PATTERN.finditer(text)):
            code = match.group(1).strip("\n")
            if code.lstrip().startswith(SKIP_MARKER):
                continue
            snippets.append(Snippet(source=path, index=index, code=code))
    return snippets


def run_snippet(snippet: Snippet) -> subprocess.CompletedProcess:
    """Execute one snippet in a fresh interpreter inside a scratch directory."""

    env = dict(os.environ)
    # src/ for the repro package, tools/ so docs/static-analysis.md examples
    # can import reprolint.
    paths = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        script = Path(scratch) / f"{snippet.source.stem}_{snippet.index}.py"
        script.write_text(snippet.code + "\n", encoding="utf-8")
        return subprocess.run(
            [sys.executable, str(script)],
            cwd=scratch,
            env=env,
            capture_output=True,
            text=True,
            timeout=SNIPPET_TIMEOUT_SECONDS,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--docs-dir", default=str(REPO_ROOT / "docs"), help="directory of *.md files")
    parser.add_argument("--verbose", action="store_true", help="echo each snippet's stdout")
    args = parser.parse_args(argv)

    snippets = extract_snippets(Path(args.docs_dir))
    if not snippets:
        print(f"check_docs: no runnable python fences under {args.docs_dir}", file=sys.stderr)
        return 1

    failures = 0
    for snippet in snippets:
        result = run_snippet(snippet)
        status = "ok" if result.returncode == 0 else "FAIL"
        print(f"[{status}] {snippet.label}")
        if args.verbose and result.stdout:
            print(result.stdout.rstrip())
        if result.returncode != 0:
            failures += 1
            sys.stderr.write(result.stdout)
            sys.stderr.write(result.stderr)
    print(f"check_docs: {len(snippets) - failures}/{len(snippets)} doc examples passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
