#!/usr/bin/env python3
"""Generate (and diff) the per-PR performance-trajectory report.

The report is one JSON file — ``BENCH_<date>.json`` — covering the full
backend × precision × scheduler matrix on the reference ConvNet-4 fixture,
plus a serving axis (``serve/<precision>/w<N>``) that pushes the same
fixture through the multi-process :class:`ProcessPoolServer` at different
worker counts.  Each cell records wall-clock latency (best/mean/p50/p95/p99
over repeats), derived throughput (samples/s and layer-timesteps/s), and
allocation stats (``tracemalloc`` peak and net growth), so a perf
regression introduced by a PR shows up as a diff against the committed
baseline rather than as a vague "it feels slower".

Workflow::

    python tools/bench_report.py --out .                    # full matrix
    python tools/bench_report.py --fast --out /tmp/bench    # CI-sized subset
    python tools/bench_report.py --diff BENCH_2026-08-07.json current.json

``--diff`` compares two reports cell by cell and prints a table of relative
changes; cells slower (or hungrier) than ``--threshold`` (default 10 %) emit
GitHub ``::warning::`` annotations.  The diff never fails the build — noisy
CI runners would make a hard gate flaky — it makes the trajectory visible.

The generator only *reads* the repository (no artifacts beyond the report),
needs nothing outside the standard toolchain, and seeds everything, so two
runs on the same machine produce comparable numbers.
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import platform
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core import Converter  # noqa: E402
from repro.models import ConvNet4  # noqa: E402
from repro.snn.executor import (  # noqa: E402
    PipelinedScheduler,
    ShardedScheduler,
    sequential_scheduler,
)

#: Schema tag — bump when the report layout changes incompatibly.
SCHEMA = "repro.bench_report/v3"
#: Previous schemas, still accepted on the baseline side of ``--diff`` so
#: the CI diff keeps working across bumps.  A v2 baseline (no serving
#: cells) diffs against a v3 current with the ``serve/…`` cells reported as
#: new — matrix drift, never a false regression; v1 additionally lacks the
#: T suffix on the matrix cells.
SCHEMA_V2 = "repro.bench_report/v2"
SCHEMA_V1 = "repro.bench_report/v1"

BACKENDS = ("dense", "event")
PRECISIONS = ("train64", "infer32", "infer8")
SCHEDULERS = ("sequential", "pipelined", "sharded")
#: Simulation budgets measured per matrix cell (the T axis).  Budgets at or
#: below the low-latency default are measured on a conversion compiled with
#: ``.latency("low", timesteps=T)`` — the matrix answers "what does serving
#: cost at equal accuracy", and equal accuracy at T=8 needs the low-latency
#: passes; the T=32 cells stay on the standard conversion as the baseline.
TIMESTEPS_AXIS = (8, 32)
LOW_LATENCY_MAX_T = 8
#: Serving axis: worker counts measured through the multi-process pool, and
#: the precisions pushed through it.  One precision keeps the serving rows
#: cheap — the per-precision compute cost is already covered by the matrix;
#: this axis isolates the scaling of the serving tier itself.
WORKERS_AXIS = (1, 2)
SERVE_PRECISIONS = ("infer32",)
#: Fixed simulation budget of the serving cells (adaptive early exit stays
#: on, so this is a cap, not the per-sample cost).
SERVE_TIMESTEPS = 32

#: Metrics compared by ``--diff``: (json path under the cell, label, unit,
#: +1 when larger is worse / -1 when smaller is worse).
_DIFF_METRICS = (
    (("wall_ms", "best"), "wall best", "ms", +1),
    (("wall_ms", "p95"), "wall p95", "ms", +1),
    (("throughput", "samples_per_s"), "throughput", "samples/s", -1),
    (("allocation", "peak_kb"), "alloc peak", "KiB", +1),
)


def _fixture(fast: bool):
    """Train-free reference fixture: an untrained ConvNet-4 converted via TCL.

    Random weights exercise exactly the same simulation kernels as trained
    ones (im2col, matmuls, threshold compares); skipping training keeps the
    full matrix in the seconds-to-minutes range and removes the training
    loop's noise from the measurement.
    """

    rng = np.random.default_rng(7)
    if fast:
        model = ConvNet4(
            channels=(4, 4, 8, 8), hidden_features=16, image_size=12, num_classes=4, batch_norm=False
        )
        images = rng.random((8, 3, 12, 12))
        calibration = rng.random((16, 3, 12, 12))
        repeats = 2
    else:
        model = ConvNet4(
            channels=(16, 16, 32, 32), hidden_features=64, image_size=16, num_classes=10, batch_norm=False
        )
        images = rng.random((16, 3, 16, 16))
        calibration = rng.random((32, 3, 16, 16))
        repeats = 3
    return model, images, calibration, repeats


def _resolve_scheduler(name: str):
    # Pin shard/stage counts so the matrix measures the same execution shape
    # on every machine (a 1-core CI runner would otherwise silently collapse
    # "sharded" into the sequential path).
    if name == "sequential":
        return sequential_scheduler()
    if name == "pipelined":
        return PipelinedScheduler()
    if name == "sharded":
        return ShardedScheduler(num_shards=2)
    raise ValueError(f"unknown scheduler {name!r}")


def _measure_cell(network, images, timesteps: int, scheduler, repeats: int) -> Dict:
    """Best-of-``repeats`` wall clock + one tracemalloc'd allocation pass."""

    batch = len(images)
    layers = len(network.layers)
    # Warm-up: fills backend caches (im2col geometry, cached operands) so the
    # timed repeats measure steady state, like a warmed-up serving process.
    network.simulate(images, timesteps, collect_statistics=False, scheduler=scheduler)
    walls: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        network.simulate(images, timesteps, collect_statistics=False, scheduler=scheduler)
        walls.append((time.perf_counter() - started) * 1000.0)
    # Allocation is measured outside the timed repeats: tracemalloc hooks
    # every allocation and slows the run severely, so mixing it into the
    # wall-clock numbers would corrupt them.
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    network.simulate(images, timesteps, collect_statistics=False, scheduler=scheduler)
    after, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    arr = np.asarray(walls, dtype=np.float64)
    best = float(arr.min())
    return {
        "wall_ms": {
            "best": best,
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "repeats": repeats,
        },
        "throughput": {
            # Derived from the best repeat: the least-interfered-with run is
            # the closest estimate of what the code itself costs.
            "samples_per_s": batch / (best / 1000.0),
            "timesteps_per_s": (batch * timesteps * layers) / (best / 1000.0),
        },
        "allocation": {
            "peak_kb": peak / 1024.0,
            "net_kb": (after - before) / 1024.0,
        },
    }


def _measure_serving_cell(server, model_name: str, images, timesteps: int, layers: int, repeats: int) -> Dict:
    """Wall clock of serving ``len(images)`` single-sample requests end to end.

    Same cell shape as :func:`_measure_cell` so ``--diff`` treats serving
    rows like any other.  The allocation section is parent-side only — the
    workers allocate in their own processes — so it tracks the submit/
    collect overhead of the pool, not the simulation itself.
    """

    batch = len(images)

    def serve_once() -> None:
        futures = [server.submit(image, model_name) for image in images]
        for future in futures:
            future.result(timeout=300)

    # Warm-up: workers fault the shared weight segment in and fill backend
    # caches, like a pool that has been serving for a while.
    serve_once()
    walls: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        serve_once()
        walls.append((time.perf_counter() - started) * 1000.0)
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    serve_once()
    after, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    arr = np.asarray(walls, dtype=np.float64)
    best = float(arr.min())
    return {
        "wall_ms": {
            "best": best,
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "repeats": repeats,
        },
        "throughput": {
            "samples_per_s": batch / (best / 1000.0),
            # Budgeted upper bound (early exit retires most samples sooner);
            # comparable across reports because the budget is pinned.
            "timesteps_per_s": (batch * timesteps * layers) / (best / 1000.0),
        },
        "allocation": {
            "peak_kb": peak / 1024.0,
            "net_kb": (after - before) / 1024.0,
        },
    }


def generate_report(
    fast: bool = False,
    date: Optional[str] = None,
    timesteps_axis=TIMESTEPS_AXIS,
    workers_axis=WORKERS_AXIS,
) -> Dict:
    """Run the backend × precision × scheduler × T matrix and return the report."""

    model, images, calibration, repeats = _fixture(fast)
    timesteps_axis = tuple(int(t) for t in timesteps_axis)
    cells: Dict[str, Dict] = {}
    for precision in PRECISIONS:
        # Fresh conversion per precision *and* latency mode: downcasting
        # float64 → float32 is lossy (and the low-latency passes shift the
        # grids), so reusing one network across columns would measure a
        # round-tripped hybrid instead of a cleanly converted one.
        conversions: Dict[Optional[int], object] = {}
        for t in timesteps_axis:
            low_t = t if t <= LOW_LATENCY_MAX_T else None
            if low_t not in conversions:
                builder = Converter(model).strategy("tcl").precision(precision).calibrate(calibration)
                if low_t is not None:
                    builder.latency("low", timesteps=low_t)
                conversions[low_t] = builder.convert()
            conversion = conversions[low_t]
            for backend in BACKENDS:
                network = conversion.snn.set_backend(backend)
                batch = network.policy.asarray(images)
                for scheduler_name in SCHEDULERS:
                    key = f"{backend}/{precision}/{scheduler_name}/T{t}"
                    cells[key] = _measure_cell(
                        network, batch, t, _resolve_scheduler(scheduler_name), repeats
                    )
                    print(
                        f"  {key:<36} best {cells[key]['wall_ms']['best']:8.1f} ms · "
                        f"{cells[key]['throughput']['samples_per_s']:7.1f} samples/s · "
                        f"peak {cells[key]['allocation']['peak_kb']:8.0f} KiB",
                        file=sys.stderr,
                    )
    # Serving axis: the same fixture through the multi-process pool, one
    # shared-memory artifact copy, worker count swept.  The registry lives
    # in a temporary directory — the generator never writes artifacts into
    # the repository.
    from repro.serve import AdaptiveConfig, ModelRegistry, ProcessPoolServer

    workers_axis = tuple(int(n) for n in workers_axis)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as root:
        registry = ModelRegistry(root)
        for precision in SERVE_PRECISIONS:
            conversion = (
                Converter(model).strategy("tcl").precision(precision).calibrate(calibration).convert()
            )
            model_name = f"bench-{precision}"
            registry.publish(model_name, conversion.snn, metadata=conversion.export_metadata())
            layers = len(conversion.snn.layers)
            for num_workers in workers_axis:
                key = f"serve/{precision}/w{num_workers}"
                server = ProcessPoolServer(
                    registry,
                    engine_config=AdaptiveConfig(max_timesteps=SERVE_TIMESTEPS),
                    num_workers=num_workers,
                )
                with server:
                    cells[key] = _measure_serving_cell(
                        server, model_name, images, SERVE_TIMESTEPS, layers, repeats
                    )
                print(
                    f"  {key:<36} best {cells[key]['wall_ms']['best']:8.1f} ms · "
                    f"{cells[key]['throughput']['samples_per_s']:7.1f} samples/s · "
                    f"peak {cells[key]['allocation']['peak_kb']:8.0f} KiB",
                    file=sys.stderr,
                )
    return {
        "schema": SCHEMA,
        "generated": date or _datetime.date.today().isoformat(),
        "config": {
            "fast": fast,
            "backends": list(BACKENDS),
            "precisions": list(PRECISIONS),
            "schedulers": list(SCHEDULERS),
            "timesteps": list(timesteps_axis),
            "low_latency_max_t": LOW_LATENCY_MAX_T,
            "serve_precisions": list(SERVE_PRECISIONS),
            "workers": list(workers_axis),
            "serve_timesteps": SERVE_TIMESTEPS,
            "batch": len(images),
            "repeats": repeats,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "results": cells,
    }


def validate_report(report: Dict) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed report.

    Accepts the current v3 schema (serving cells alongside the T-suffixed
    matrix), the v2 schema (matrix only), and the legacy v1 schema (single
    ``timesteps`` int, no T suffix), so pre-bump committed baselines keep
    validating on the ``--diff`` baseline side.
    """

    if not isinstance(report, dict):
        raise ValueError(f"report must be an object, got {type(report).__name__}")
    schema = report.get("schema")
    if schema not in (SCHEMA, SCHEMA_V2, SCHEMA_V1):
        raise ValueError(
            f"unknown schema {schema!r} (expected {SCHEMA!r} or legacy {SCHEMA_V2!r}/{SCHEMA_V1!r})"
        )
    for field in ("generated", "config", "environment", "results"):
        if field not in report:
            raise ValueError(f"report is missing the {field!r} field")
    results = report["results"]
    if not isinstance(results, dict) or not results:
        raise ValueError("report has no result cells")
    config = report["config"]
    if schema == SCHEMA_V1:
        expected = {
            f"{b}/{p}/{s}"
            for b in config["backends"]
            for p in config["precisions"]
            for s in config["schedulers"]
        }
    else:
        expected = {
            f"{b}/{p}/{s}/T{t}"
            for b in config["backends"]
            for p in config["precisions"]
            for s in config["schedulers"]
            for t in config["timesteps"]
        }
        if schema == SCHEMA:
            expected |= {
                f"serve/{p}/w{n}"
                for p in config.get("serve_precisions", ())
                for n in config.get("workers", ())
            }
    missing = expected - set(results)
    if missing:
        raise ValueError(f"report is missing matrix cells: {sorted(missing)}")
    for key, cell in results.items():
        for section, fields in (
            ("wall_ms", ("best", "mean", "p50", "p95", "p99")),
            ("throughput", ("samples_per_s", "timesteps_per_s")),
            ("allocation", ("peak_kb", "net_kb")),
        ):
            if section not in cell:
                raise ValueError(f"cell {key!r} is missing the {section!r} section")
            for name in fields:
                value = cell[section].get(name)
                if not isinstance(value, (int, float)):
                    raise ValueError(f"cell {key!r} field {section}.{name} is not numeric: {value!r}")
                if section != "allocation" and value < 0:
                    raise ValueError(f"cell {key!r} field {section}.{name} is negative")


def _cell_metric(cell: Dict, path) -> Optional[float]:
    value: object = cell
    for part in path:
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return float(value) if isinstance(value, (int, float)) else None


def diff_reports(baseline: Dict, current: Dict, threshold: float = 0.10) -> List[str]:
    """Compare two reports; return regression descriptions beyond ``threshold``.

    Prints a per-cell table of relative changes as a side effect.  A cell
    present on only one side is reported (matrix drift is itself a change
    worth noticing) but never counted as a regression.
    """

    regressions: List[str] = []
    base_results, curr_results = baseline["results"], current["results"]
    for key in sorted(set(base_results) | set(curr_results)):
        if key not in base_results:
            print(f"{key:<32} (new cell — no baseline)")
            continue
        if key not in curr_results:
            print(f"{key:<32} (cell dropped from current report)")
            continue
        parts = []
        for path, label, unit, direction in _DIFF_METRICS:
            base = _cell_metric(base_results[key], path)
            curr = _cell_metric(curr_results[key], path)
            if not base or curr is None:
                continue
            change = (curr - base) / base
            parts.append(f"{label} {change:+6.1%}")
            if change * direction > threshold:
                regressions.append(
                    f"{key}: {label} regressed {abs(change):.1%} "
                    f"({base:.1f} → {curr:.1f} {unit})"
                )
        print(f"{key:<32} {' · '.join(parts)}")
    return regressions


def _parse_axis(spec: Optional[str], default, flag: str):
    """Parse a comma-separated integer axis spec ("8,32") into a tuple."""

    if spec is None:
        return default
    try:
        axis = tuple(int(part) for part in spec.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated integers, got {spec!r}")
    if not axis or any(t <= 0 for t in axis):
        raise SystemExit(f"{flag} values must be positive integers, got {spec!r}")
    return axis


def _parse_timesteps(spec: Optional[str]):
    """Parse the ``--timesteps`` axis spec ("8,32") into a tuple of ints."""

    return _parse_axis(spec, TIMESTEPS_AXIS, "--timesteps")


def _parse_workers(spec: Optional[str]):
    """Parse the ``--workers`` axis spec ("1,2,4") into a tuple of ints."""

    return _parse_axis(spec, WORKERS_AXIS, "--workers")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="CI-sized subset (small fixture, fewer repeats)")
    parser.add_argument(
        "--timesteps",
        default=None,
        help=(
            "comma-separated simulation budgets for the T axis (default "
            f"{','.join(str(t) for t in TIMESTEPS_AXIS)}); budgets ≤ {LOW_LATENCY_MAX_T} are "
            "measured on a low-latency conversion calibrated for that T"
        ),
    )
    parser.add_argument(
        "--workers",
        default=None,
        help=(
            "comma-separated pool worker counts for the serving axis (default "
            f"{','.join(str(n) for n in WORKERS_AXIS)}); each count serves the fixture through "
            "the multi-process ProcessPoolServer over one shared-memory artifact copy"
        ),
    )
    parser.add_argument("--out", default=".", help="directory to write BENCH_<date>.json into")
    parser.add_argument(
        "--diff",
        nargs="+",
        metavar="REPORT",
        default=None,
        help="diff mode: BASELINE [CURRENT] — with one argument, a fresh fast report is the CURRENT side",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.10, help="relative regression threshold for --diff (default 0.10)"
    )
    parser.add_argument(
        "--github-annotations",
        action="store_true",
        help="emit ::warning:: lines for regressions (for GitHub Actions logs)",
    )
    args = parser.parse_args(argv)

    if args.diff is not None:
        if len(args.diff) > 2:
            parser.error("--diff takes at most two reports (BASELINE [CURRENT])")
        baseline = json.loads(Path(args.diff[0]).read_text())
        validate_report(baseline)
        if len(args.diff) == 2:
            current = json.loads(Path(args.diff[1]).read_text())
        else:
            print("generating fresh --fast report for the current side …", file=sys.stderr)
            current = generate_report(
                fast=True,
                timesteps_axis=_parse_timesteps(args.timesteps),
                workers_axis=_parse_workers(args.workers),
            )
        validate_report(current)
        if baseline["config"].get("fast") != current["config"].get("fast"):
            print(
                "note: comparing reports generated at different scales "
                "(--fast vs full) — relative changes are still meaningful, absolutes are not"
            )
        regressions = diff_reports(baseline, current, threshold=args.threshold)
        if regressions:
            print(f"\n{len(regressions)} metric(s) beyond the ±{args.threshold:.0%} threshold:")
            for line in regressions:
                print(f"  {line}")
                if args.github_annotations:
                    print(f"::warning title=bench regression::{line}")
        else:
            print(f"\nno regressions beyond the ±{args.threshold:.0%} threshold")
        return 0

    report = generate_report(
        fast=args.fast,
        timesteps_axis=_parse_timesteps(args.timesteps),
        workers_axis=_parse_workers(args.workers),
    )
    validate_report(report)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report['generated']}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
