"""Dtype discipline: allocations must route through the ComputePolicy.

PR-4 made precision a runtime policy (``repro.runtime.resolve_dtype``):
under ``train64`` everything is float64 (bit-identical to the paper runs),
under ``infer32`` the converted SNN runs float32.  That only works if no
allocation hardcodes a width.  Three patterns are flagged inside the
policy-managed packages:

* ``d1`` — ``np.zeros/ones/empty/full`` (and ``*_like``) with no ``dtype=``:
  numpy defaults to float64, silently widening the ``infer32`` path.
* ``d2`` — ``np.array``/``np.asarray`` of a *literal* (list/tuple/number)
  with no ``dtype=``: the result dtype is whatever Python inference picks.
  Array-to-array ``asarray(x)`` passthroughs are dtype-preserving and
  deliberately not flagged.
* ``d3`` — a literal ``np.float64``/``np.float32``/``float`` dtype argument
  (including ``.astype(np.float64)``): hardcodes a width the policy should
  own.  Deliberate full-precision sites (statistics, telemetry) carry an
  ``allow[dtype]`` with the rationale.  Since the quantized ``infer8``
  profile landed the same rule covers the narrow integer widths
  (``np.int8``/``np.int16``/``np.int32``): quantized storage dtypes belong
  to ``repro.runtime.quantize`` and ``ComputePolicy.spike_dtype``, so a
  narrow-int literal in a policy-managed package is a width the
  quantization helpers should own.  ``int64`` and the ``int`` builtin stay
  exempt — labels and indices are not on any quantization grid.

Scope: autograd, nn, snn, core, serve, data, training.  ``runtime`` is the
policy's home (the float profiles *and* the int8 quantization grid live
there), ``obs``/``analysis`` are off the numeric path, and tests/tools may
pin dtypes freely.

This is the static complement of ``repro.runtime.audit`` (dynamic dtype
tracing), which only sees paths a test actually executes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import Checker, Finding, Module, register_checker

#: repro subpackages whose allocations must consult the policy.
POLICY_MANAGED = {"autograd", "nn", "snn", "core", "serve", "data", "training"}

#: allocators that default to float64 when dtype is omitted.  The ``*_like``
#: variants are deliberately absent: they inherit the prototype's dtype, the
#: same dtype-preserving property that exempts ``asarray(x)`` passthroughs.
_DEFAULTING_ALLOCATORS = {"zeros", "ones", "empty", "full"}

_CONVERTERS = {"array", "asarray", "ascontiguousarray"}

#: dtype expressions that hardcode a width.  The narrow integer widths joined
#: the set when the quantized ``infer8`` profile landed: int8 weight grids and
#: int32 bias accumulators belong to ``repro.runtime.quantize``, not call
#: sites.  ``int64`` (and the ``int`` builtin) stay exempt — that is the
#: index-and-label width, which no compute profile rescales.
_LITERAL_DTYPES = {"float64", "float32", "float16", "int8", "int16", "int32"}


def _np_func(node: ast.Call) -> Optional[str]:
    """Name of a ``np.<func>(...)`` / ``numpy.<func>(...)`` call, else None."""

    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in {"np", "numpy"}
    ):
        return func.attr
    return None


def _has_kwarg(node: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in node.keywords)


def _is_literal_arg(node: ast.expr) -> bool:
    """Is this expression a literal (constants all the way down) whose dtype
    numpy would pick by inference?  Comprehensions and lists of names carry
    their elements' dtype, like an ``asarray(x)`` passthrough — not flagged."""

    if isinstance(node, (ast.List, ast.Tuple)):
        return all(_is_literal_arg(elt) for elt in node.elts)
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, complex, bool))
    if isinstance(node, ast.UnaryOp):
        return _is_literal_arg(node.operand)
    return False


def _literal_dtype_name(node: ast.expr) -> Optional[str]:
    """'float64' for ``np.float64``, 'float' for the builtin, else None.

    The ``int`` builtin is deliberately not matched: it aliases int64, the
    exempt index/label width, not a quantization grid.
    """

    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in {"np", "numpy"}
        and node.attr in _LITERAL_DTYPES
    ):
        return node.attr
    if isinstance(node, ast.Name) and node.id == "float":
        return "float"
    if isinstance(node, ast.Constant) and node.value in _LITERAL_DTYPES:
        return str(node.value)
    return None


@register_checker
class DtypeChecker(Checker):
    rule = "dtype"
    description = "allocations in policy-managed packages must use resolve_dtype(), not numpy defaults or literal widths"

    def check(self, module: Module) -> Iterator[Finding]:
        pkg = module.repro_package()
        if pkg not in POLICY_MANAGED:
            return

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue

            func_name = _np_func(node)
            if func_name in _DEFAULTING_ALLOCATORS and not _has_kwarg(node, "dtype"):
                yield self.finding(
                    module,
                    node,
                    f"np.{func_name} without dtype= defaults to float64; "
                    "pass dtype=resolve_dtype(...) so the active ComputePolicy decides",
                )
                continue

            if (
                func_name in _CONVERTERS
                and not _has_kwarg(node, "dtype")
                and node.args
                and _is_literal_arg(node.args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    f"np.{func_name} of a literal without dtype= leaves the width "
                    "to inference; pass dtype=resolve_dtype(...)",
                )
                continue

            # d3: literal widths — dtype= kwargs and .astype(...) calls.
            for kw in node.keywords:
                if kw.arg == "dtype":
                    name = _literal_dtype_name(kw.value)
                    if name is not None:
                        yield self.finding(
                            module,
                            node,
                            f"literal dtype={name} hardcodes a width the "
                            "ComputePolicy should own; use resolve_dtype() "
                            "(or allow[dtype] with a rationale)",
                        )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in {"astype", "view"}
                and node.args
            ):
                name = _literal_dtype_name(node.args[0])
                if name is not None:
                    yield self.finding(
                        module,
                        node,
                        f".{node.func.attr}({name}) hardcodes a width the "
                        "ComputePolicy should own; use resolve_dtype() "
                        "(or allow[dtype] with a rationale)",
                    )
