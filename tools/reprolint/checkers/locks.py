"""Lock discipline: a lightweight static race detector.

The threaded tiers (serve server/batcher/registry, obs metrics/tracer, the
snn schedulers) follow one convention: every attribute that is *written
under a lock* belongs to that lock, and every other touch of it must also
hold the lock.  This checker encodes exactly that, per class:

1. Find the lock attributes: ``self.<name> = threading.Lock()`` (or
   ``RLock``/``Condition``) in any method.
2. Find the *protected set*: attributes stored (assign / augassign / del /
   subscript-store) or mutated via a mutating method call (``append``,
   ``pop``, ``update``...) inside a ``with self.<lock>:`` block, in any
   method other than ``__init__``.
3. Flag every access (read or write) of a protected attribute outside a
   ``with self.<lock>:`` block.

``__init__`` is exempt end-to-end — the object isn't shared yet.  Single
reads of a reference that is swapped atomically (the active-policy /
active-tracer singletons) are real findings under this rule; they carry an
``allow[lock]`` comment explaining why the bare read is safe, which keeps
the reasoning in the source instead of in the checker.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..core import Checker, Finding, Module, register_checker

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: method calls that mutate common containers in place.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "appendleft",
    "popleft",
    "move_to_end",
    "sort",
    "reverse",
}


def _is_lock_factory(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``."""

    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.expr) -> str:
    """'x' for a ``self.x`` expression, else ''."""

    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _with_lock_names(node: ast.With) -> Set[str]:
    """Lock attribute names entered by this with-statement (``self.<lock>``
    or ``self.<lock>.acquire…`` style context items)."""

    names: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):  # e.g. self._cv.wait_for wrappers
            expr = expr.func
        name = _self_attr(expr)
        if name:
            names.add(name)
    return names


class _MethodScanner:
    """Walks one method, tracking which lock attributes are held."""

    def __init__(self, lock_attrs: Set[str]):
        self.lock_attrs = lock_attrs
        # attr -> lock names held at (node, is_write) occurrences
        self.accesses: List[Tuple[str, ast.AST, bool, frozenset]] = []

    def scan(self, method: ast.FunctionDef) -> None:
        for stmt in method.body:
            self._visit(stmt, frozenset())

    def _visit(self, node: ast.AST, held: frozenset) -> None:
        if isinstance(node, ast.With):
            entered = _with_lock_names(node) & self.lock_attrs
            for item in node.items:
                self._visit(item.context_expr, held)
            for stmt in node.body:
                self._visit(stmt, held | entered)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested callables run later, with no lock held.
            for child in ast.iter_child_nodes(node):
                self._visit(child, frozenset())
            return

        self._record(node, held)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and self._mutated_attr(node)
        ):
            # A mutator call was recorded as one write; don't also record the
            # receiver's attribute load while descending.
            for arg in node.args:
                self._visit(arg, held)
            for kw in node.keywords:
                self._visit(kw.value, held)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _record(self, node: ast.AST, held: frozenset) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self._record_store(target, node, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_store(target, node, held)
        elif isinstance(node, ast.Call):
            attr = self._mutated_attr(node)
            if attr:
                self.accesses.append((attr, node, True, held))
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr:
                self.accesses.append((attr, node, False, held))

    @staticmethod
    def _mutated_attr(node: ast.Call) -> str:
        """'x' when the call mutates ``self.x`` via a container mutator."""

        if not (isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS):
            return ""
        attr = _self_attr(node.func.value)
        if not attr and isinstance(node.func.value, ast.Subscript):
            attr = _self_attr(node.func.value.value)
        return attr

    def _record_store(self, target: ast.expr, node: ast.AST, held: frozenset) -> None:
        attr = _self_attr(target)
        if not attr and isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
        if not attr and isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, node, held)
            return
        if attr:
            self.accesses.append((attr, node, True, held))


@register_checker
class LockChecker(Checker):
    rule = "lock"
    description = "attributes written under a lock must always be accessed under that lock"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: Module, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

        lock_attrs: Set[str] = set()
        for method in methods:
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign) and _is_lock_factory(sub.value):
                    for target in sub.targets:
                        name = _self_attr(target)
                        if name:
                            lock_attrs.add(name)
        if not lock_attrs:
            return

        # Pass 1: which attrs are written under which lock (outside __init__)?
        protected: Dict[str, Set[str]] = {}  # attr -> locks it was written under
        scanners: Dict[str, _MethodScanner] = {}
        for method in methods:
            scanner = _MethodScanner(lock_attrs)
            scanner.scan(method)
            scanners[method.name] = scanner
            if method.name == "__init__":
                continue
            for attr, _node, is_write, held in scanner.accesses:
                if is_write and held and attr not in lock_attrs:
                    protected.setdefault(attr, set()).update(held)

        # Pass 2: flag bare accesses of protected attrs (outside __init__).
        for method in methods:
            if method.name == "__init__":
                continue
            for attr, node, is_write, held in scanners[method.name].accesses:
                locks = protected.get(attr)
                if not locks or locks & held:
                    continue
                verb = "written" if is_write else "read"
                lock_desc = "/".join(f"self.{name}" for name in sorted(locks))
                yield self.finding(
                    module,
                    node,
                    f"{cls.name}.{attr} is guarded by {lock_desc} elsewhere but "
                    f"{verb} here without it",
                )
