"""Built-in checkers.  Importing this package registers every rule."""

from . import bufferpool, dtypes, layering, locks, shm, tracer  # noqa: F401

__all__ = ["layering", "dtypes", "locks", "tracer", "bufferpool", "shm"]
