"""Tracer hygiene: protect the ≤2% disabled-overhead gate structurally.

Two rules, both born from the PR-6 observability contract:

* ``span balance`` — every ``*.span(...)`` call must be context-managed:
  either directly (``with tracer.span(...) as s:``) or assigned to a name
  that is entered by a ``with`` in the same function
  (``run_span = tracer.span(...)`` … ``with run_span, ...:``).  A span
  that is begun but never ``__exit__``-ed corrupts the active-span stack
  for every span after it.

* ``hot-path payloads`` — in the hot-path files (the spiking executor and
  schedulers, the serving batcher/server), building span *payloads* —
  f-strings or dict literals fed to ``span(...)``/``set_attribute``/
  ``add_event`` — inside a loop must happen under an ``if`` that tests
  ``tracer.enabled`` / ``span.recording`` (either branch: the executor's
  ``if not tracer.enabled: … else: …`` split counts).  Payload built
  outside the guard is paid even when tracing is off, which is exactly
  what the benchmarks/test_obs_overhead.py gate exists to prevent.

Cold-path files may build payloads freely — the NULL_TRACER fast path
already makes the *call* free; it is the argument construction in tight
loops that shows up in the overhead numbers.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..core import Checker, Finding, Module, register_checker

#: files where per-timestep / per-request loops live.
HOT_PATH_FILES = (
    "src/repro/snn/executor.py",
    "src/repro/snn/neurons.py",
    "src/repro/snn/functional.py",
    "src/repro/snn/network.py",
    "src/repro/serve/batcher.py",
    "src/repro/serve/server.py",
    "src/repro/serve/engine.py",
)

_PAYLOAD_SINKS = {"span", "set_attribute", "add_event", "event"}
_LOOP_TYPES = (ast.For, ast.While, ast.AsyncFor)
_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_span_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "span"


def _mentions_guard(test: ast.expr, recording_aliases: Set[str]) -> bool:
    """Does this if-test consult ``.enabled`` / ``.recording`` (directly or
    via a hoisted alias like ``recording = span.recording``)?"""

    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr in {"enabled", "recording"}:
            return True
        if isinstance(sub, ast.Name) and sub.id in recording_aliases:
            return True
    return False


def _has_payload(call: ast.Call) -> bool:
    """Does this sink call carry a freshly-built payload (f-string or dict
    literal, positionally or by keyword)?"""

    exprs = list(call.args) + [kw.value for kw in call.keywords]
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.JoinedStr, ast.Dict, ast.DictComp)):
                return True
    return False


class _FunctionAnalysis:
    """Span calls, with-entered names, and guard aliases for one scope."""

    def __init__(self, body: List[ast.stmt]):
        self.span_calls: List[ast.Call] = []
        self.with_entered_calls: Set[int] = set()  # id() of Call nodes
        self.with_entered_names: Set[str] = set()
        self.span_assigned_names: dict = {}  # name -> Call node
        self.recording_aliases: Set[str] = set()
        for stmt in body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, _FUNC_TYPES):
            return  # nested scopes analysed separately
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and _is_span_call(expr):
                    self.with_entered_calls.add(id(expr))
                elif isinstance(expr, ast.Name):
                    self.with_entered_names.add(expr.id)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_span_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.span_assigned_names[target.id] = node.value
            elif (
                isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in {"enabled", "recording"}
            ):  # pragma: no cover - enabled/recording are properties, not calls
                pass
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
            if node.value.attr in {"enabled", "recording"}:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.recording_aliases.add(target.id)
        if isinstance(node, ast.Call) and _is_span_call(node):
            self.span_calls.append(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)


@register_checker
class TracerChecker(Checker):
    rule = "tracer"
    description = "spans must be context-managed; hot-path loops must guard span payload construction"

    def check(self, module: Module) -> Iterator[Finding]:
        if "repro" not in module.relpath or not module.relpath.startswith("src/"):
            return
        yield from self._check_scope(module, list(ast.iter_child_nodes(module.tree)))
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(module, node.body)
                if module.relpath in HOT_PATH_FILES:
                    yield from self._check_hot_path(module, node)

    def _check_scope(self, module: Module, body: List[ast.stmt]) -> Iterator[Finding]:
        analysis = _FunctionAnalysis(body)
        entered_names = analysis.with_entered_names
        for call in analysis.span_calls:
            if id(call) in analysis.with_entered_calls:
                continue
            assigned_to = [
                name for name, c in analysis.span_assigned_names.items() if c is call
            ]
            if assigned_to and any(name in entered_names for name in assigned_to):
                continue
            yield self.finding(
                module,
                call,
                "span is not context-managed: enter it with 'with' (directly or "
                "via the assigned name) so __exit__ always runs",
            )

    def _check_hot_path(
        self, module: Module, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        analysis = _FunctionAnalysis(func.body)
        aliases = analysis.recording_aliases

        def walk(node: ast.AST, in_loop: bool, guarded: bool) -> Iterator[Finding]:
            if isinstance(node, _FUNC_TYPES):
                return
            if isinstance(node, ast.If) and _mentions_guard(node.test, aliases):
                # Either branch counts: `if not tracer.enabled: fast else: slow`
                for child in node.body + node.orelse:
                    yield from walk(child, in_loop, True)
                return
            if isinstance(node, _LOOP_TYPES):
                in_loop = True
            if (
                in_loop
                and not guarded
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _PAYLOAD_SINKS
                and _has_payload(node)
            ):
                yield self.finding(
                    module,
                    node,
                    f"span payload built in a hot loop outside an enabled/recording "
                    f"guard ({node.func.attr}); wrap in 'if tracer.enabled:' or "
                    "'if span.recording:' to keep the disabled path free",
                )
            for child in ast.iter_child_nodes(node):
                yield from walk(child, in_loop, guarded)

        for stmt in func.body:
            yield from walk(stmt, False, False)
