"""Shared-memory lifecycle discipline.

A ``multiprocessing.shared_memory.SharedMemory`` segment is an OS object:
an unmapped handle leaks a file descriptor and mapping, and an unlinked
*created* segment leaks named pages in ``/dev/shm`` until reboot.  The
serving pool's whole memory story rests on segments being closed exactly
once, so the repo convention is mechanical — every ``SharedMemory(...)``
call (create *or* attach) must be one of:

1. the context expression of a ``with`` statement (the context manager
   unmaps on exit);
2. assigned to a local name that some ``finally`` block in the same
   function calls ``.close()`` (and, for owners, ``.unlink()``) on — the
   ownership-transfer factories in :mod:`repro.serve.shm` use the
   ``installed``-flag variant of this shape;
3. assigned to ``self.<attr>`` in a class one of whose methods calls
   ``self.<attr>.close()`` — the handle-object shape, where the class owns
   the unmap.

Anything else — a bare call, a return of the raw segment, an assignment
nothing ever closes — is a finding.  Like every rule, a justified
exception carries ``# reprolint: allow[shm] -- reason`` in the source.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import Checker, Finding, Module, register_checker


def _is_shm_call(node: ast.AST) -> bool:
    """True for ``SharedMemory(...)`` / ``shared_memory.SharedMemory(...)``."""

    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _closed_names_in_finally(func: ast.AST) -> Set[str]:
    """Local names ``n`` with an ``n.close()`` or ``n.unlink()`` call inside
    any ``finally`` block of ``func``."""

    closed: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("close", "unlink")
                    and isinstance(sub.func.value, ast.Name)
                ):
                    closed.add(sub.func.value.id)
    return closed


def _self_attr_target(node: ast.expr) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _class_closes_attr(cls: ast.ClassDef, attr: str) -> bool:
    """True when any method of ``cls`` calls ``self.<attr>.close()``."""

    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
                and _self_attr_target(node.func.value) == attr
            ):
                return True
    return False


def _with_context_calls(func: ast.AST) -> Set[int]:
    """ids of Call nodes that are ``with`` context expressions in ``func``."""

    managed: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                managed.add(id(item.context_expr))
    return managed


def _assignment_target(func: ast.AST, call: ast.Call) -> Tuple[Optional[str], Optional[str]]:
    """``(local_name, self_attr)`` the call's result is bound to, if any."""

    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and node.value is call and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                return target.id, None
            attr = _self_attr_target(target)
            if attr:
                return None, attr
    return None, None


@register_checker
class ShmChecker(Checker):
    rule = "shm"
    description = (
        "every SharedMemory create/attach must pair with close()/unlink() "
        "in a finally block, a with statement, or an owning class's close method"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        # Map every function to its (optional) enclosing class, so the
        # self-attribute shape can consult the owning class's methods.
        functions: List[Tuple[ast.AST, Optional[ast.ClassDef]]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        functions.append((stmt, node))
        class_methods = {id(func) for func, _cls in functions}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and id(node) not in class_methods:
                functions.append((node, None))

        for func, cls in functions:
            yield from self._check_function(module, func, cls)

    def _check_function(
        self, module: Module, func: ast.AST, cls: Optional[ast.ClassDef]
    ) -> Iterator[Finding]:
        calls = [
            node
            for node in ast.walk(func)
            if _is_shm_call(node)
            # Skip calls inside callables nested in this one — they are
            # visited as their own function entries when they are methods,
            # and a closure gets checked against its own body either way.
        ]
        if not calls:
            return
        managed = _with_context_calls(func)
        closed_locals = _closed_names_in_finally(func)
        for call in calls:
            if id(call) in managed:
                continue
            local, attr = _assignment_target(func, call)
            if local is not None and local in closed_locals:
                continue
            if attr is not None and cls is not None and _class_closes_attr(cls, attr):
                continue
            name = getattr(func, "name", "<module>")
            if local is not None:
                detail = f"assigned to {local!r} with no close()/unlink() in a finally block"
            elif attr is not None:
                detail = f"stored on self.{attr} but no method of the class closes it"
            else:
                detail = "neither assigned for cleanup nor used as a context manager"
            yield self.finding(
                module,
                call,
                f"SharedMemory segment opened in {name}() is not reliably released: {detail}",
            )
