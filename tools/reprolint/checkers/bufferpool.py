"""BufferPool escape analysis: scratch must not outlive the call that took it.

The kernel workspace contract (PR-4/PR-5): a kernel *receives* its
workspace pool as a parameter, ``take``s scratch from it, and may hand a
taken array back to its caller — the caller owns the pool and knows the
array's lifetime.  What is never legal:

* storing a taken array on ``self`` — the pool will recycle the block on
  the next timestep and the attribute silently aliases fresh scratch;
* returning scratch taken from a pool the function *owns* (``self._pool``
  or one it constructed) — the caller has no idea the array is pooled and
  will keep it across the next ``take``.

So: ``return workspace.take(...)`` with ``workspace`` a parameter is fine
(that is the kernel contract); ``return self._pool.take(...)`` and
``self._scratch = pool.take(...)`` are escapes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..core import Checker, Finding, Module, register_checker


def _take_root(node: ast.expr) -> Optional[ast.expr]:
    """For a ``<pool>.take(...)`` call, the root of the pool expression
    (a Name or the ``self`` of an attribute chain); None otherwise."""

    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "take"
    ):
        return None
    root = node.func.value
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        root = root.value
    return root


def _param_names(func: ast.FunctionDef) -> Set[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


@register_checker
class BufferPoolChecker(Checker):
    rule = "bufferpool"
    description = "BufferPool scratch must not be stored on self or returned from a pool the function owns"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        params = _param_names(func)

        def pool_owned(call: ast.expr) -> Optional[bool]:
            """True: taken from a pool this function owns.  False: taken from
            a caller-supplied (parameter) pool.  None: not a take call."""

            root = _take_root(call)
            if root is None:
                return None
            if isinstance(root, ast.Name) and root.id in params and root.id != "self":
                return False
            return True

        # names bound to taken scratch, and whether their pool was owned
        taken_names: Dict[str, bool] = {}

        def visit(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                return  # nested functions are checked as their own scope

            if isinstance(node, ast.Assign):
                owned = pool_owned(node.value)
                for target in node.targets:
                    if owned is not None and isinstance(target, ast.Name):
                        taken_names[target.id] = owned
                    if owned is not None and self._is_self_attr(target):
                        yield self.finding(
                            module,
                            node,
                            "BufferPool scratch stored on self escapes the call; "
                            "the pool recycles the block and the attribute will "
                            "alias the next take",
                        )
                    # storing a previously-taken name on self also escapes
                    if (
                        isinstance(node.value, ast.Name)
                        and node.value.id in taken_names
                        and self._is_self_attr(target)
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"BufferPool scratch '{node.value.id}' stored on self "
                            "escapes the call; copy it into an owned array instead",
                        )

            if isinstance(node, ast.Return) and node.value is not None:
                yield from self._check_return(module, node, pool_owned, taken_names)

            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        for stmt in func.body:
            yield from visit(stmt)

    @staticmethod
    def _is_self_attr(target: ast.expr) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def _check_return(self, module, stmt, pool_owned, taken_names) -> Iterator[Finding]:
        exprs = [stmt.value]
        if isinstance(stmt.value, ast.Tuple):
            exprs = list(stmt.value.elts)
        for expr in exprs:
            owned = pool_owned(expr)
            if owned is True:
                yield self.finding(
                    module,
                    stmt,
                    "returning scratch taken from a pool this function owns; "
                    "the caller cannot see the pooled lifetime — copy first "
                    "or take from a caller-supplied workspace",
                )
            elif isinstance(expr, ast.Name) and taken_names.get(expr.id) is True:
                yield self.finding(
                    module,
                    stmt,
                    f"returning '{expr.id}', scratch taken from a pool this "
                    "function owns; copy first or take from a caller-supplied "
                    "workspace",
                )
