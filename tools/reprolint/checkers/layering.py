"""Layering: the declared import contract for the ``repro`` package DAG.

The contract (mirrored in docs/architecture.md, "Layering contract"):

    rank 0   obs, runtime          leaf services: tracing, policy, buffers
    rank 1   autograd              tensor ops + tape
    rank 2   nn, data, optim       layers, loaders, optimizers
    rank 3   models, snn, core,    architectures, spiking engine, TCL
             training              conversion, training loops
    rank 4   serve, analysis       serving tier, reporting

A module may import from its own rank or below.  Importing *upward* —
``rank(target) > rank(source)`` — is an inversion and gets flagged, no
matter where the import hides: module level, function body (lazy imports
are the classic dodge, e.g. the old ``conversion.py`` → ``serve``
inversion), or ``TYPE_CHECKING`` blocks.  Same-rank imports are allowed;
the mutual ``core ↔ training`` and ``models ↔ core`` edges are deliberate
and cycle-free at import time because each side lazy-loads.

Relative imports are resolved against the file's package path, so
``from ..serve import x`` inside ``repro/core/`` is seen for what it is.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..core import Checker, Finding, Module, register_checker

#: package name → rank in the layer DAG.  Lower ranks must not import higher.
LAYER_RANKS = {
    "obs": 0,
    "runtime": 0,
    "autograd": 1,
    "nn": 2,
    "data": 2,
    "optim": 2,
    "models": 3,
    "snn": 3,
    "core": 3,
    "training": 3,
    "serve": 4,
    "analysis": 4,
}


def resolve_relative(
    package_parts: Tuple[str, ...], level: int, module: Optional[str]
) -> Optional[Tuple[str, ...]]:
    """Absolute dotted parts of a relative import target, or None if the
    import climbs past the package root."""

    if level == 0:
        return tuple(module.split(".")) if module else None
    if level > len(package_parts):
        return None
    base = package_parts[: len(package_parts) - (level - 1)]
    if module:
        base = base + tuple(module.split("."))
    return base


def _target_repro_package(parts: Optional[Tuple[str, ...]]) -> Optional[str]:
    if parts and len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


@register_checker
class LayeringChecker(Checker):
    rule = "layering"
    description = "imports must follow the declared repro layer DAG (no upward imports)"

    def check(self, module: Module) -> Iterator[Finding]:
        source_pkg = module.repro_package()
        if source_pkg is None or source_pkg not in LAYER_RANKS:
            return
        source_rank = LAYER_RANKS[source_pkg]

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                targets = [tuple(alias.name.split(".")) for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                resolved = resolve_relative(module.package_parts, node.level, node.module)
                if resolved is None:
                    continue
                targets = [resolved]
                # ``from . import serve`` style: the imported names may be
                # subpackages — resolve each name as a child of the base.
                if node.level > 0 and not node.module:
                    targets = [resolved + (alias.name,) for alias in node.names]
            else:
                continue

            for target in targets:
                target_pkg = _target_repro_package(target)
                if target_pkg is None or target_pkg not in LAYER_RANKS:
                    continue
                if target_pkg == source_pkg:
                    continue
                target_rank = LAYER_RANKS[target_pkg]
                if target_rank > source_rank:
                    yield self.finding(
                        module,
                        node,
                        f"upward import: {source_pkg} (rank {source_rank}) imports "
                        f"{target_pkg} (rank {target_rank}); invert the dependency "
                        "or move the code down the stack",
                    )
