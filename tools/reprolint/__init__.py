"""repro-lint: project-specific static analysis for the repro stack.

The stack's correctness rests on conventions the regular toolchain cannot
see: the package layering contract in ``docs/architecture.md``, the PR-4
rule that every array allocation routes through the active
:class:`~repro.runtime.ComputePolicy`, the PR-5/PR-6 rule that shared state
in the threaded schedulers and serving tier is only touched under its lock,
the tracer's zero-overhead-when-disabled contract, and the
:class:`~repro.runtime.buffers.BufferPool` rule that scratch arrays never
outlive the call that took them.  ``repro-lint`` enforces all five with a
pure-stdlib ``ast`` pass over every file, every run — the static complement
of the dynamic ``repro.runtime.audit`` harness, which only sees the paths a
test happens to execute.

Layout::

    tools/reprolint/
      core.py          Finding, Module, checker registry, suppressions
      baseline.py      the shrink-only committed-baseline ratchet
      cli.py           discovery, output formats, exit codes
      checkers/        one module per rule (layering, dtype, lock,
                       tracer, bufferpool)

Run it from the repo root (the CI job does)::

    PYTHONPATH=tools python -m reprolint src/

or, after ``pip install -e .``, as the ``repro-lint`` console script.
``docs/static-analysis.md`` documents the rules, the suppression policy
(``# reprolint: allow[rule] -- reason``) and how to write a checker.
"""

from .core import CHECKERS, Checker, Finding, Module, register_checker, run_checkers
from .baseline import Baseline, compare_to_baseline

# Importing the package registers the built-in checkers.
from . import checkers  # noqa: F401  (import-for-side-effect)

__all__ = [
    "CHECKERS",
    "Checker",
    "Finding",
    "Module",
    "register_checker",
    "run_checkers",
    "Baseline",
    "compare_to_baseline",
]

__version__ = "1.0.0"
