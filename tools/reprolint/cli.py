"""Command-line entry point for ``repro-lint``.

Exit codes: 0 clean (or all findings baselined), 1 new findings or a stale
baseline, 2 usage errors.  Output formats: ``text`` (one line per finding),
``json`` (machine-readable, stable ordering), ``github`` (``::error``
workflow annotations so findings land on the PR diff).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline, compare_to_baseline
from .core import CHECKERS, Finding, Module, run_checkers

__all__ = ["main", "discover_modules"]


def discover_modules(paths: Sequence[Path], root: Path) -> List[Module]:
    """Load every ``*.py`` file under the given paths (skipping caches),
    with repo-relative posix paths so fingerprints are machine-independent."""

    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py")) if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")

    modules: List[Module] = []
    for file in files:
        resolved = file.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = file.as_posix()
        modules.append(Module.load(file, relpath))
    return modules


def _emit_text(findings: List[Finding], stream) -> None:
    for finding in findings:
        print(finding, file=stream)


def _emit_json(findings: List[Finding], stream) -> None:
    payload = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }
        for f in findings
    ]
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _emit_github(findings: List[Finding], stream) -> None:
    for f in findings:
        # GitHub annotation syntax: properties are comma-separated, the
        # message follows ``::``; newlines/percent must be URL-escaped.
        message = f.message.replace("%", "%25").replace("\n", "%0A")
        print(
            f"::error file={f.path},line={f.line},col={f.col},title=reprolint {f.rule}::{message}",
            file=stream,
        )


_EMITTERS = {"text": _emit_text, "json": _emit_json, "github": _emit_github}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific AST invariant checks for the repro stack.",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument(
        "--format", choices=sorted(_EMITTERS), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of grandfathered findings (default: <repo>/tools/reprolint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings (shrink-only: refuses to add entries)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max((len(rule) for rule in CHECKERS), default=0)
        for rule, checker_cls in sorted(CHECKERS.items()):
            print(f"{rule:<{width}}  {checker_cls.description}")
        return 0

    if not args.paths:
        parser.error("no paths given")

    select = None
    if args.select:
        select = set(args.select)
        unknown = select - set(CHECKERS)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")

    root = Path.cwd().resolve()
    baseline_path = args.baseline or Path(__file__).resolve().parent / "baseline.json"

    try:
        modules = discover_modules(args.paths, root)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    findings = run_checkers(modules, select=select)

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    comparison = compare_to_baseline(findings, baseline)

    if args.update_baseline:
        refreshed = Baseline.from_findings(comparison.baselined)
        grew = any(
            count > baseline.entries.get(key, 0) for key, count in refreshed.entries.items()
        )
        if comparison.new or grew:
            print(
                "repro-lint: refusing to grow the baseline — fix or suppress new findings instead",
                file=sys.stderr,
            )
            _emit_text(comparison.new, sys.stderr)
            return 1
        refreshed.save(baseline_path)
        removed = sum(baseline.entries.values()) - sum(refreshed.entries.values())
        print(f"repro-lint: baseline updated ({removed} entr{'y' if removed == 1 else 'ies'} removed)")
        return 0

    _EMITTERS[args.format](comparison.new, sys.stdout)

    status = 0
    if comparison.new:
        status = 1
        if args.format != "json":
            print(
                f"repro-lint: {len(comparison.new)} finding(s)"
                + (f" ({len(comparison.baselined)} baselined)" if comparison.baselined else ""),
                file=sys.stderr,
            )
    if comparison.stale:
        status = 1
        for fingerprint in comparison.stale:
            print(
                f"repro-lint: stale baseline entry (violation fixed — run --update-baseline): {fingerprint}",
                file=sys.stderr,
            )
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
