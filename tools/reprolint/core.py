"""The checker framework: findings, parsed modules, registry, suppressions.

A *checker* is a class with a ``rule`` name and a ``check(module)`` method
yielding :class:`Finding` objects.  Checkers register themselves with
:func:`register_checker`, so adding a rule is one new module under
``checkers/`` — the CLI, suppression handling, baseline ratchet and output
formats all come for free.

Suppressions are inline and must carry a reason::

    self.mean = np.asarray(mean, dtype=np.float64)  # reprolint: allow[dtype] -- full-precision statistics, cast at call time

A comment on the finding's line (or the line directly above, for lines that
would otherwise overflow) suppresses matching rules.  An ``allow`` without a
``-- reason`` suppresses nothing and is itself reported, so rationale can
never silently rot out of the tree.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

__all__ = [
    "Finding",
    "Module",
    "Checker",
    "CHECKERS",
    "register_checker",
    "run_checkers",
]

#: ``# reprolint: allow[rule1,rule2] -- reason`` (the reason is mandatory).
_ALLOW_PATTERN = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rules>[\w\s,-]+)\]\s*(?:--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path — stable across machines
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Baseline identity: deliberately excludes line/col so unrelated
        edits above a baselined violation don't churn the baseline file."""

        return f"{self.path}::{self.rule}::{self.message}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """One parsed ``allow`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    used: bool = False


@dataclass
class Module:
    """One parsed source file handed to every checker."""

    path: Path
    relpath: str
    source: str
    tree: ast.AST
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, relpath: str) -> "Module":
        source = path.read_text(encoding="utf-8")
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            suppressions=_parse_suppressions(source),
        )

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Dotted-module parts of the *package* containing this file, derived
        from the repo-relative path (``src/repro/core/conversion.py`` →
        ``("repro", "core")``) — what relative-import resolution needs."""

        parts = Path(self.relpath).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        return tuple(parts[:-1])

    def repro_package(self) -> Optional[str]:
        """The top-level ``repro`` subpackage this file belongs to, if any."""

        parts = self.package_parts
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return None


def _parse_suppressions(source: str) -> List[Suppression]:
    """Every ``reprolint: allow`` comment in the file, via tokenize (so the
    marker is never matched inside a string literal)."""

    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_PATTERN.search(token.string)
            if match is None:
                continue
            rules = tuple(r.strip() for r in match.group("rules").split(",") if r.strip())
            suppressions.append(
                Suppression(line=token.start[0], rules=rules, reason=match.group("reason"))
            )
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse raised first
        pass
    return suppressions


class Checker:
    """Base class for one rule.  Subclass, set ``rule``/``description``,
    implement :meth:`check`, and decorate with :func:`register_checker`."""

    rule: str = ""
    description: str = ""

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule name → checker class.  Populated by :func:`register_checker`.
CHECKERS: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the registry (name collisions are
    a programming error and fail loudly)."""

    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} declares no rule name")
    if cls.rule in CHECKERS:
        raise ValueError(f"duplicate checker rule {cls.rule!r}")
    CHECKERS[cls.rule] = cls
    return cls


def _apply_suppressions(module: Module, findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings covered by a valid ``allow`` on their line (or the line
    above); report invalid allows (missing reason) and unused allows."""

    by_line: Dict[int, List[Suppression]] = {}
    for suppression in module.suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)

    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for line in (finding.line, finding.line - 1):
            for suppression in by_line.get(line, []):
                if finding.rule in suppression.rules and suppression.reason:
                    suppression.used = True
                    suppressed = True
        if not suppressed:
            kept.append(finding)

    for suppression in module.suppressions:
        if not suppression.reason:
            kept.append(
                Finding(
                    rule="suppression",
                    path=module.relpath,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"allow[{','.join(suppression.rules)}] has no '-- reason'; "
                        "suppressions must say why"
                    ),
                )
            )
        elif not suppression.used:
            kept.append(
                Finding(
                    rule="suppression",
                    path=module.relpath,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"allow[{','.join(suppression.rules)}] suppresses nothing; "
                        "remove the stale comment"
                    ),
                )
            )
    return kept


def run_checkers(
    modules: Iterable[Module],
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run every (selected) registered checker over every module.

    Findings are returned sorted by location; suppressions have already been
    applied (including the ``suppression`` meta-rule findings for invalid or
    stale ``allow`` comments).
    """

    selected = [
        checker_cls()
        for rule, checker_cls in sorted(CHECKERS.items())
        if select is None or rule in select
    ]
    findings: List[Finding] = []
    for module in modules:
        module_findings: List[Finding] = []
        for checker in selected:
            module_findings.extend(checker.check(module))
        findings.extend(_apply_suppressions(module, module_findings))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
