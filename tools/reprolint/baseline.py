"""The committed baseline: a ratchet that may shrink but never grow.

A baseline entry grandfathers one pre-existing violation (by fingerprint —
path + rule + message, deliberately not line number, so unrelated edits
don't churn the file).  The comparison is strict in both directions:

* a finding *not* in the baseline is new debt → the run fails;
* a baseline entry with no matching finding is stale — the violation was
  fixed, so the entry must be deleted (``--update-baseline``) before the
  run passes.  That is what makes the ratchet one-way: the only legal
  baseline edit is removal.

The file is JSON (sorted fingerprints → counts) so diffs are reviewable and
merge conflicts are honest.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from .core import Finding

__all__ = ["Baseline", "BaselineComparison", "compare_to_baseline"]

FORMAT_VERSION = "reprolint-baseline/v1"


@dataclass
class Baseline:
    """Fingerprint → occurrence count of the grandfathered findings."""

    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unknown baseline version {data.get('version')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        entries = data.get("entries", {})
        if not all(isinstance(v, int) and v > 0 for v in entries.values()):
            raise ValueError(f"{path}: baseline counts must be positive integers")
        return cls(entries=dict(entries))

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(entries=dict(Counter(f.fingerprint for f in findings)))

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": {key: self.entries[key] for key in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@dataclass
class BaselineComparison:
    """The three-way split of a run against the baseline."""

    new: List[Finding] = field(default_factory=list)  # not grandfathered → fail
    baselined: List[Finding] = field(default_factory=list)  # known debt → pass
    stale: List[str] = field(default_factory=list)  # fixed debt → shrink the file

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale


def compare_to_baseline(findings: List[Finding], baseline: Baseline) -> BaselineComparison:
    """Split findings into new vs baselined, and surface stale entries.

    Counts matter: two identical violations in one file share a fingerprint,
    so a baseline count of 1 grandfathers only one of them — adding a second
    copy of old debt still fails.
    """

    comparison = BaselineComparison()
    budget = dict(baseline.entries)
    for finding in findings:
        remaining = budget.get(finding.fingerprint, 0)
        if remaining > 0:
            budget[finding.fingerprint] = remaining - 1
            comparison.baselined.append(finding)
        else:
            comparison.new.append(finding)
    comparison.stale = sorted(key for key, count in budget.items() if count > 0)
    return comparison
