"""``python -m reprolint`` entry point (what CI uses)."""

import sys

from .cli import main

sys.exit(main())
