"""Setuptools configuration for the TCL reproduction package.

Installs the ``repro`` package from ``src/`` and registers the
``repro-serve`` console script (the inference-serving CLI).
"""

from setuptools import find_packages, setup

setup(
    name="repro-tcl",
    version="1.3.0",
    description="Reproduction of 'TCL: an ANN-to-SNN Conversion with Trainable Clipping Layers' (DAC 2021)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serve.cli:main",
        ],
    },
)
