"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that legacy editable installs (``pip install -e . --no-use-pep517``)
work in fully offline environments where the ``wheel`` package is missing.
"""

from setuptools import setup

setup()
