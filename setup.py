"""Setuptools configuration for the TCL reproduction package.

Installs the ``repro`` package from ``src/`` and registers two console
scripts: ``repro-serve`` (the inference-serving CLI) and ``repro-lint``
(the project's AST invariant checker, which lives under ``tools/`` so it
never becomes a runtime dependency of ``repro`` itself).
"""

from setuptools import find_packages, setup

setup(
    name="repro-tcl",
    version="1.4.0",
    description="Reproduction of 'TCL: an ANN-to-SNN Conversion with Trainable Clipping Layers' (DAC 2021)",
    package_dir={"": "src", "reprolint": "tools/reprolint"},
    packages=find_packages("src") + ["reprolint", "reprolint.checkers"],
    package_data={"reprolint": ["baseline.json"]},
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serve.cli:main",
            "repro-lint=reprolint.cli:main",
        ],
    },
)
