#!/usr/bin/env python3
"""Quickstart: train a small TCL network, convert it to an SNN, sweep latency.

This is the 60-second tour of the library:

1. generate a synthetic CIFAR-like dataset (the offline stand-in for CIFAR-10),
2. train the paper's "4Conv, 2Linear" network with trainable clipping layers,
3. convert the trained ANN to a spiking network using the trained λ values as
   norm-factors (the TCL method), and
4. report SNN accuracy at several latencies next to the ANN accuracy —
   the same layout as one row of the paper's Table 1.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import render_table1
from repro.core import ExperimentConfig, run_experiment
from repro.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        model="convnet4",
        dataset="cifar",
        model_kwargs={"channels": (16, 16, 32, 32), "hidden_features": 64},
        training=TrainingConfig(epochs=8, learning_rate=0.05, milestones=(5, 7)),
        strategies=("tcl",),
        timesteps=200,
        checkpoints=(25, 50, 100, 150, 200),
        train_per_class=40,
        test_per_class=16,
        num_classes=6,
        image_size=16,
        seed=0,
    )

    print("Training the 4Conv-2Linear network with trainable clipping layers ...")
    result = run_experiment(config)

    print()
    print(render_table1(result, title="Quickstart: TCL conversion (synthetic CIFAR-10 substitute)"))
    print()
    print("Trained clipping bounds (λ) per activation site:")
    for site, value in result.lambdas.items():
        print(f"  {site:>4}: λ = {value:.3f}")
    sweep = result.outcome("tcl").sweep
    final_latency = max(sweep.accuracy_by_latency)
    print()
    print(
        f"ANN accuracy {result.ann_accuracy:.2%} vs SNN accuracy "
        f"{sweep.accuracy_by_latency[final_latency]:.2%} at T={final_latency}"
    )


if __name__ == "__main__":
    main()
