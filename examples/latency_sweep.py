#!/usr/bin/env python3
"""Accuracy-versus-latency sweep: the trade-off the TCL paper targets.

ANN-to-SNN conversions trade latency (simulation timesteps T) for accuracy.
This example trains one TCL network and plots — as an ASCII curve — how the
converted SNN's accuracy climbs toward the ANN reference as T grows, under
three different norm-factor choices.  It also reports the smallest latency at
which each conversion comes within 0.5 % of its ANN (the paper's notion of a
"negligible" conversion loss) and the mean firing rate, the proxy for the
energy cost of running the SNN.

Run with::

    python examples/latency_sweep.py
"""

from repro.analysis import ascii_curve
from repro.core import ExperimentConfig, latency_to_match_ann, run_experiment
from repro.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        model="convnet4",
        dataset="cifar",
        model_kwargs={"channels": (16, 16, 32, 32), "hidden_features": 64},
        training=TrainingConfig(epochs=8, learning_rate=0.05, milestones=(6,)),
        strategies=("tcl", "percentile", "max"),
        timesteps=300,
        checkpoints=(10, 25, 50, 100, 150, 200, 250, 300),
        train_per_class=40,
        test_per_class=16,
        num_classes=6,
        image_size=16,
        seed=3,
    )

    print("Training and converting (TCL model + plain twin for the baselines) ...")
    result = run_experiment(config)
    print(f"\nTCL ANN accuracy: {result.ann_accuracy:.2%}"
          f"   original ANN accuracy: {result.original_ann_accuracy:.2%}\n")

    for outcome in result.outcomes:
        sweep = outcome.sweep
        latency_needed = latency_to_match_ann(sweep, tolerance=0.005)
        latency_text = f"T={latency_needed}" if latency_needed > 0 else f"not reached by T={config.timesteps}"
        print(f"=== {outcome.strategy_name} (from the {outcome.source_model} ANN, "
              f"reference {sweep.ann_accuracy:.2%}) ===")
        print(ascii_curve(sweep.accuracy_by_latency, label="accuracy"))
        print(f"latency to reach ANN-0.5%: {latency_text}")
        print()


if __name__ == "__main__":
    main()
