#!/usr/bin/env python3
"""Residual-network conversion (paper Section 5 / Figure 3).

Trains a width-reduced ResNet-20 with TCL activation sites, converts it to a
spiking network, and inspects the conversion of its residual blocks: the
per-block norm-factors (λ_pre, λ_c1, λ_out), the spiking-block structure
(non-identity spiking layer NS + output spiking layer OS), and the agreement
between ANN and SNN predictions.

Run with::

    python examples/resnet_conversion.py
"""


from repro.autograd import Tensor, no_grad
from repro.core import Converter, ExperimentConfig
from repro.core.pipeline import prepare_data, train_ann
from repro.snn import SpikingResidualBlock
from repro.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        model="resnet20",
        dataset="cifar",
        model_kwargs={"width_multiplier": 0.25},
        training=TrainingConfig(epochs=12, learning_rate=0.02, milestones=(9, 11)),
        batch_size=16,
        train_per_class=32,
        test_per_class=12,
        num_classes=5,
        image_size=16,
        seed=2,
    )

    print("Training ResNet-20 (reduced width) with TCL clipping layers ...")
    train_images, train_labels, test_images, test_labels = prepare_data(config)
    model, ann_accuracy, _ = train_ann(config, train_images, train_labels, test_images, test_labels)
    print(f"ANN test accuracy: {ann_accuracy:.2%}")

    print("\nConverting with the Section-5 residual-block rules ...")
    conversion = Converter(model).strategy("tcl").calibrate(train_images).convert()

    blocks = [layer for layer in conversion.snn.layers if isinstance(layer, SpikingResidualBlock)]
    print(f"{len(blocks)} spiking residual blocks (type A = identity shortcut, type B = projection):")
    for index, (block, factors) in enumerate(zip(blocks, conversion.residual_factors)):
        print(
            f"  block {index:2d} [type {block.block_type}]  "
            f"λ_pre={factors.lambda_pre:.3f}  λ_c1={factors.lambda_c1:.3f}  λ_out={factors.lambda_out:.3f}"
        )

    print("\nSimulating the converted SNN ...")
    model.eval()
    with no_grad():
        ann_predictions = model(Tensor(test_images)).data.argmax(axis=1)
    simulation = conversion.snn.simulate_batched(test_images, timesteps=150, batch_size=32, checkpoints=[50, 100, 150])
    curve = simulation.accuracy_curve(test_labels)
    agreement = float((simulation.predictions() == ann_predictions).mean())

    print("SNN accuracy by latency:")
    for latency in sorted(curve):
        print(f"  T={latency:4d}: {curve[latency]:.2%}")
    print(f"ANN/SNN prediction agreement at T=150: {agreement:.2%}")


if __name__ == "__main__":
    main()
