#!/usr/bin/env python3
"""Figure-1 style activation analysis: why the trained λ is a better norm-factor.

The paper's Figure 1 plots the activation distribution of an early VGG layer
and marks where the candidate norm-factors fall: the maximum activation
(Diehl et al. 2015), the 99.9th percentile (Rueckauer et al. 2017) and the
trained clipping bound λ (TCL).  The maximum sits far out in the tail, the
percentile lower, and the trained λ lower still — which is exactly what makes
the TCL-converted SNN fast.

This example trains a small VGG twice (with and without TCL), collects
activation statistics at every ClippedReLU site over the test set, prints the
ASCII histogram of one early layer with all three markers, and tabulates
max / p99.9 / λ for every site.

Run with::

    python examples/norm_strategy_comparison.py
"""

from repro.analysis import render_activation_report, render_table
from repro.core import ExperimentConfig, analyze_activation_sites
from repro.core.pipeline import prepare_data, train_ann
from repro.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        model="vgg11",
        dataset="cifar",
        model_kwargs={"width_multiplier": 0.25, "classifier_width": 64},
        training=TrainingConfig(epochs=8, learning_rate=0.05, milestones=(6,)),
        batch_size=16,
        train_per_class=32,
        test_per_class=12,
        num_classes=6,
        image_size=16,
        seed=4,
    )

    train_images, train_labels, test_images, test_labels = prepare_data(config)

    print("Training VGG-11 with TCL clipping layers ...")
    tcl_model, tcl_accuracy, _ = train_ann(config, train_images, train_labels, test_images, test_labels,
                                           clip_enabled=True)
    print(f"  TCL ANN accuracy: {tcl_accuracy:.2%}")
    print("Training the original (plain ReLU) VGG-11 ...")
    plain_model, plain_accuracy, _ = train_ann(config, train_images, train_labels, test_images, test_labels,
                                               clip_enabled=False)
    print(f"  original ANN accuracy: {plain_accuracy:.2%}")

    print("\nActivation distribution of the 2nd activation site of the original network")
    print("(the norm-factor candidates are marked; compare with the paper's Figure 1):\n")
    plain_reports = analyze_activation_sites(plain_model, test_images, bins=40)
    print(render_activation_report(plain_reports[1], width=45))

    print("\nPer-site norm-factor candidates (TCL-trained network):")
    tcl_reports = analyze_activation_sites(tcl_model, test_images, bins=40)
    rows = []
    for report in tcl_reports:
        rows.append([
            report.site_name,
            f"{report.maximum:.3f}",
            f"{report.p999:.3f}",
            f"{report.trained_lambda:.3f}" if report.trained_lambda is not None else "-",
        ])
    print(render_table(["site", "max activation", "99.9% percentile", "trained λ"], rows))

    print("\nInterpretation: the conversion divides weights by these values, so the")
    print("smaller the norm-factor, the higher the firing rates and the lower the")
    print("latency needed for the SNN to reach its ANN's accuracy.")


if __name__ == "__main__":
    main()
