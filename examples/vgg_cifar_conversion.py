#!/usr/bin/env python3
"""VGG on the CIFAR-10 substitute: TCL versus the conversion baselines.

Reproduces the comparison behind the CIFAR-10 rows of Table 1 at reduced
scale: a width-reduced VGG-11 is trained twice (with TCL clipping layers, and
as a plain-ReLU "original" network), then converted three ways —

* TCL (trained λ as norm-factors, our method),
* max-norm (Diehl et al. 2015) on the original network,
* 99.9 %-percentile norm (Rueckauer et al. 2017) on the original network —

and each SNN is evaluated over a latency sweep.  The expected shape: the TCL
row reaches its ANN accuracy with the smallest T, the max-norm row is the
slowest, the percentile row sits in between.

Run with::

    python examples/vgg_cifar_conversion.py
"""

from repro.analysis import ascii_curve, render_table1
from repro.core import ExperimentConfig, run_experiment
from repro.training import TrainingConfig


def main() -> None:
    config = ExperimentConfig(
        model="vgg11",
        dataset="cifar",
        model_kwargs={"width_multiplier": 0.25, "classifier_width": 64},
        training=TrainingConfig(epochs=8, learning_rate=0.05, milestones=(5, 7)),
        strategies=("tcl", "percentile", "max"),
        timesteps=200,
        checkpoints=(25, 50, 100, 150, 200),
        batch_size=16,
        train_per_class=32,
        test_per_class=12,
        num_classes=6,
        image_size=16,
        seed=1,
    )

    print("Training VGG-11 (reduced width) with and without TCL; this takes a minute ...")
    result = run_experiment(config)

    print()
    print(render_table1(result, title="VGG on synthetic CIFAR: TCL vs conversion baselines"))
    print()
    for outcome in result.outcomes:
        print(f"--- {outcome.strategy_name} (converted from the {outcome.source_model} ANN) ---")
        print(ascii_curve(outcome.accuracy_by_latency, label=f"{outcome.strategy_name} accuracy"))
        print()


if __name__ == "__main__":
    main()
