#!/usr/bin/env python3
"""Serving demo: convert a TCL network, publish it, and serve requests.

The serving counterpart to ``quickstart.py``:

1. train the paper's ConvNet with trainable clipping layers on the synthetic
   CIFAR-like substitute and convert it to an SNN,
2. save the converted network as a versioned serving artifact
   (``ConversionResult.save`` → ``.npz`` + JSON bundle),
3. reload it through the model registry (LRU-cached, as the server does),
4. push the evaluation set through the micro-batching inference server with
   per-sample adaptive latency, and
5. print the serving telemetry next to the fixed-T baseline.

Run with::

    python examples/serving_demo.py

(The ``repro-serve demo`` console command wraps the same flow.)
"""

import tempfile

import numpy as np

from repro.core import Converter, ExperimentConfig
from repro.core.pipeline import prepare_data, train_ann
from repro.serve import AdaptiveConfig, AdaptiveEngine, InferenceServer, MicroBatcher, ModelRegistry
from repro.training import TrainingConfig

TIMESTEPS = 120
STABILITY_WINDOW = 40


def main() -> None:
    config = ExperimentConfig(
        model="convnet4",
        dataset="cifar",
        model_kwargs={"channels": (16, 16, 32, 32), "hidden_features": 64},
        training=TrainingConfig(epochs=6, learning_rate=0.05, milestones=(4,)),
        timesteps=TIMESTEPS,
        train_per_class=32,
        test_per_class=12,
        num_classes=6,
        image_size=16,
        seed=0,
    )

    print("Training the TCL network ...")
    train_images, train_labels, test_images, test_labels = prepare_data(config)
    model, ann_accuracy, _ = train_ann(config, train_images, train_labels, test_images, test_labels, clip_enabled=True)
    print(f"ANN accuracy: {ann_accuracy:.2%}")

    print("Converting and publishing the serving artifact ...")
    conversion = Converter(model).strategy("tcl").calibrate(train_images).convert()

    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        path = registry.publish("convnet4-cifar", conversion.snn, metadata=conversion.export_metadata())
        print(f"Artifact bundle: {path}")

        network = registry.get("convnet4-cifar").network
        fixed = AdaptiveEngine(network, AdaptiveConfig(max_timesteps=TIMESTEPS, adaptive=False)).infer(test_images)
        print(f"Fixed-T baseline: accuracy {fixed.accuracy(test_labels):.2%} at T={TIMESTEPS}")

        print(f"Serving {len(test_images)} single-sample requests (adaptive latency) ...")
        server = InferenceServer(
            registry,
            engine_config=AdaptiveConfig(
                max_timesteps=TIMESTEPS, min_timesteps=10, stability_window=STABILITY_WINDOW
            ),
            batcher=MicroBatcher(max_batch_size=24, max_wait_ms=10.0),
        )
        with server:
            futures = [server.submit(image, "convnet4-cifar") for image in test_images]
            replies = [future.result(timeout=600) for future in futures]

        predictions = np.array([reply.prediction for reply in replies])
        accuracy = float((predictions == test_labels).mean())
        print()
        print(f"Served accuracy: {accuracy:.2%} (fixed-T baseline {fixed.accuracy(test_labels):.2%})")
        print(server.metrics.snapshot().report())


if __name__ == "__main__":
    main()
