#!/usr/bin/env python3
"""Extending the conversion compiler: register a lowering for a custom layer.

The converter is organised as a small compiler — models are traced into a
graph IR and lowered to spiking layers through a per-layer-type registry.
That registry is open: a third-party layer type becomes convertible by
registering a :class:`~repro.core.LoweringRule` for it, without touching any
core module.

This example walks the full loop for a ``CenterCrop2d`` layer the library
does not know about:

1. build a network containing the custom layer and show that ``dry_run``
   reports it as unsupported (together with any other topology problems),
2. register a lowering rule mapping it onto a spiking counterpart
   (cropping is norm-factor transparent, like pooling),
3. re-run the dry run (clean) and convert,
4. check that the converted SNN agrees with the ANN.

The step-by-step version of this recipe (with the ``op`` reference table)
lives in ``docs/architecture.md``.

Run with::

    python examples/custom_lowering.py
"""

import numpy as np

from repro import Converter, register_lowering
from repro.autograd import Tensor, no_grad
from repro.core import ClippedReLU, LoweringRule
from repro.nn import Conv2d, Flatten, Linear, Sequential
from repro.nn.module import Module
from repro.snn.layers import SpikingLayer


class CenterCrop2d(Module):
    """Crop ``margin`` pixels off every spatial border (inference-only)."""

    def __init__(self, margin: int = 1) -> None:
        super().__init__()
        self.margin = margin

    def forward(self, inputs: Tensor) -> Tensor:
        m = self.margin
        return Tensor(inputs.data[:, :, m:-m, m:-m])


class SpikingCenterCrop2d(SpikingLayer):
    """The spiking twin: crop spike tensors; no neurons, no state."""

    name = "spiking_center_crop2d"

    def __init__(self, margin: int = 1) -> None:
        self.margin = margin

    def step(self, inputs: np.ndarray) -> np.ndarray:
        m = self.margin
        return inputs[:, :, m:-m, m:-m]


def build_net(rng) -> Sequential:
    return Sequential(
        Conv2d(1, 4, 3, padding=1, rng=rng),
        ClippedReLU(initial_lambda=1.5),
        CenterCrop2d(margin=1),
        Flatten(),
        Linear(4 * 6 * 6, 3, rng=rng),
    )


def main() -> None:
    rng = np.random.default_rng(11)
    net = build_net(rng)

    print("Before registration, the dry run reports the custom layer:")
    for message in Converter(net).dry_run().messages():
        print(f"  - {message}")

    @register_lowering(CenterCrop2d)
    class CenterCropLowering(LoweringRule):
        op = "transparent"  # cropping does not change the activation scale

        def emit(self, node, ctx):
            return [SpikingCenterCrop2d(margin=node.module.margin)]

    report = Converter(net).dry_run()
    print(f"\nAfter registration the dry run is clean: ok={report.ok}")

    result = Converter(net).strategy("tcl").convert()
    print("Converted layers:", [type(layer).__name__ for layer in result.snn.layers])

    images = rng.uniform(0.0, 1.0, (32, 1, 8, 8))
    net.eval()
    with no_grad():
        ann_predictions = net(Tensor(images)).data.argmax(axis=1)
    snn_predictions = result.snn.simulate(images, timesteps=150).predictions()
    agreement = float((ann_predictions == snn_predictions).mean())
    print(f"ANN/SNN prediction agreement at T=150: {agreement:.2%}")


if __name__ == "__main__":
    main()
